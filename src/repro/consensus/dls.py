"""Single-shot binary consensus for partial synchrony.

The paper's Theorem 3 construction lets the transaction manager be "a
collection of notaries ... of which less than one-third is assumed to
be unreliable.  They would run a consensus algorithm for partial
synchrony such as the one from Dwork, Lynch & Stockmeyer."  This module
is that algorithm, specialised to the single binary decision the TM
needs (commit vs abort).

Design (rotating leader, quorums of ``2f+1`` out of ``N >= 3f+1``):

* Rounds of (locally timed) duration ``T0 * 2^r`` — doubling handles
  the unknown GST: eventually a round is long enough *and* has an
  honest leader after GST.
* ``STATUS``: each notary reports its lock ``(value, locked_round)``
  (or its unlocked preference) to the round's leader.
* ``PROPOSE``: the leader proposes the reported lock from the highest
  round if any, else its own preference.  Proposals carry *evidence*
  (who requested what) so proposals without a justified input can be
  rejected — external validity.
* ``ECHO``: a notary endorses the proposal unless it is locked on the
  other value at a higher-or-equal round.  ``2f+1`` echoes ⇒ the notary
  locks the value and broadcasts a signed ``DECIDE`` vote.
* ``2f+1`` matching signed DECIDE votes form the decision's
  :class:`~repro.crypto.certificates.QuorumCertificate`.  Quorum
  intersection makes two conflicting certificates impossible with at
  most ``f`` Byzantine notaries — that is property CC.

Safety argument (executable check in the tests): two conflicting locks
in the same round would require two ``2f+1`` echo quorums, intersecting
in ``f+1`` notaries — at least one honest, which echoes once per round.
Across rounds the lock-carrying rule preserves the locked value of the
highest locked round.

Byzantine notaries are modelled through :class:`NotaryBehavior` flags:
``equivocate_leader`` (send different proposals to different peers) and
``double_vote`` (echo and DECIDE both values) — the attack repertoire
experiment E5 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..clocks import DriftingClock, PERFECT_CLOCK
from ..crypto.certificates import Decision, QuorumCertificate, Vote
from ..crypto.keys import Identity, KeyRing
from ..errors import ConsensusError
from ..net.message import Envelope, MsgKind
from ..net.network import Network
from ..sim.kernel import Simulator
from ..sim.process import Process
from ..sim.trace import TraceKind
from .messages import ConsensusMsg, Phase


@dataclass
class NotaryBehavior:
    """Deviation flags for Byzantine notaries."""

    equivocate_leader: bool = False  # propose commit to half, abort to the rest
    double_vote: bool = False  # echo + DECIDE both values

    @property
    def byzantine(self) -> bool:
        return self.equivocate_leader or self.double_vote


class Notary(Process):
    """One committee member.

    Parameters
    ----------
    committee:
        Ordered list of all notary names (leader rotation order).
    f:
        Assumed fault bound; quorums are ``2f+1``.
    subscribers:
        Participant names to which signed DECIDE votes are also sent
        (escrows and customers assembling quorum certificates).
    round_duration:
        Base round length ``T0`` in local-clock units.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        keyring: KeyRing,
        identity: Identity,
        committee: List[str],
        f: int,
        payment_id: str,
        subscribers: Optional[List[str]] = None,
        clock: DriftingClock = PERFECT_CLOCK,
        round_duration: float = 10.0,
        behavior: Optional[NotaryBehavior] = None,
        max_rounds: int = 64,
    ) -> None:
        super().__init__(sim, name)
        if name not in committee:
            raise ConsensusError(f"notary {name!r} not in its own committee")
        if len(committee) < 3 * f + 1:
            raise ConsensusError(
                f"committee of {len(committee)} cannot tolerate f={f} "
                f"(need N >= 3f+1)"
            )
        self.network = network
        self.keyring = keyring
        self.identity = identity
        self.committee = list(committee)
        self.f = f
        self.quorum = 2 * f + 1
        self.payment_id = payment_id
        self.subscribers = list(subscribers or [])
        self.clock = clock
        self.round_duration = float(round_duration)
        self.behavior = behavior or NotaryBehavior()
        self.max_rounds = max_rounds

        # Input state (external validity evidence):
        self.preference: Optional[Decision] = None
        self.evidence: Dict[str, Any] = {}
        self.commit_justified = False
        self.abort_justified = False

        # Consensus state:
        self.round = -1
        self.locked_value: Optional[Decision] = None
        self.locked_round = -1
        self.decided: Optional[Decision] = None
        self._statuses: Dict[int, Dict[str, ConsensusMsg]] = {}
        self._echoes: Dict[int, Dict[Decision, Set[str]]] = {}
        self._decides: Dict[Decision, Dict[str, Vote]] = {
            Decision.COMMIT: {},
            Decision.ABORT: {},
        }
        self._proposal_seen: Dict[int, ConsensusMsg] = {}
        self._started = False

    # -- local time helpers ----------------------------------------------------

    @property
    def now_local(self) -> float:
        return self.clock.local_time(self.sim.now)

    # -- external input ----------------------------------------------------------

    def submit_preference(self, value: Decision, evidence: Dict[str, Any]) -> None:
        """Feed a justified input (called by the committee front end)."""
        if value is Decision.COMMIT:
            self.commit_justified = True
        else:
            self.abort_justified = True
        if self.preference is None:
            self.preference = value
            self.evidence = dict(evidence)
        if self.behavior.double_vote:
            # A traitor does not wait for consensus: it signs DECIDE
            # votes for BOTH values outright (its signature is its own
            # to abuse; only quorum arithmetic can contain the damage).
            for v in (Decision.COMMIT, Decision.ABORT):
                if not self.vars_voted(v):
                    vote = Vote.cast(self.identity, self.payment_id, v)
                    self._decides[v][self.name] = vote
                    decide = ConsensusMsg(
                        phase=Phase.DECIDE,
                        round=max(self.round, 0),
                        payment_id=self.payment_id,
                        value=v,
                        vote=vote,
                    )
                    self._broadcast(decide, include_self=False)
                    for subscriber in self.subscribers:
                        self.network.send(self, subscriber, MsgKind.CONSENSUS, decide)
        if not self._started:
            self._started = True
            self._advance_round()

    # -- round machinery -------------------------------------------------------------

    def leader_of(self, rnd: int) -> str:
        return self.committee[rnd % len(self.committee)]

    def _advance_round(self) -> None:
        if self.terminated or self.decided is not None:
            return
        self.round += 1
        if self.round > self.max_rounds:
            self.note("consensus round limit reached", round=self.round)
            return
        duration = self.round_duration * (2 ** min(self.round, 20))
        deadline_local = self.now_local + duration
        self.set_timer_at("round", self.clock.global_time(deadline_local))
        # STATUS to the round's leader:
        status = ConsensusMsg(
            phase=Phase.STATUS,
            round=self.round,
            payment_id=self.payment_id,
            value=self.locked_value if self.locked_value else self.preference,
            locked_round=self.locked_round,
            evidence=self.evidence,
        )
        self._consensus_send(self.leader_of(self.round), status)
        # The leader also receives its own status implicitly:
        if self.leader_of(self.round) == self.name:
            self._note_status(self.name, status)

    def on_timer(self, timer_id: str) -> None:
        if timer_id == "round":
            self._advance_round()

    # -- message plumbing ---------------------------------------------------------------

    def _consensus_send(self, to: str, msg: ConsensusMsg) -> None:
        if to == self.name:
            return  # self-delivery handled inline by callers
        self.network.send(self, to, MsgKind.CONSENSUS, msg)

    def _broadcast(self, msg: ConsensusMsg, include_self: bool = True) -> None:
        for peer in self.committee:
            if peer == self.name:
                continue
            self._consensus_send(peer, msg)
        if include_self:
            self._handle_consensus(self.name, msg)

    def handle_message(self, message: Envelope) -> None:
        if message.kind is not MsgKind.CONSENSUS:
            return
        msg = message.payload
        if not isinstance(msg, ConsensusMsg) or msg.payment_id != self.payment_id:
            return
        self._handle_consensus(message.sender, msg)

    def _handle_consensus(self, sender: str, msg: ConsensusMsg) -> None:
        if sender not in self.committee:
            return
        if msg.round > self.round and self.decided is None:
            # Catch up: a peer is already in a later round (we may have
            # received no external input yet).  Adopt the round and its
            # timer so we can echo justified proposals.
            self._started = True
            self.round = msg.round
            duration = self.round_duration * (2 ** min(self.round, 20))
            self.set_timer_at(
                "round", self.clock.global_time(self.now_local + duration)
            )
        if msg.phase is Phase.STATUS:
            self._note_status(sender, msg)
        elif msg.phase is Phase.PROPOSE:
            self._on_propose(sender, msg)
        elif msg.phase is Phase.ECHO:
            self._on_echo(sender, msg)
        elif msg.phase is Phase.DECIDE:
            self._on_decide(sender, msg)

    # -- STATUS / PROPOSE ----------------------------------------------------------------

    def _note_status(self, sender: str, msg: ConsensusMsg) -> None:
        if msg.round < self.round or self.leader_of(msg.round) != self.name:
            return
        bucket = self._statuses.setdefault(msg.round, {})
        bucket[sender] = msg
        # Statuses spread justification (a notary that saw the abort
        # request informs a leader that did not):
        for key, val in msg.evidence.items():
            self.evidence.setdefault(key, val)
        if len(bucket) >= self.quorum and msg.round == self.round:
            self._propose(msg.round)

    def _propose(self, rnd: int) -> None:
        if self._proposal_seen.get(rnd) is not None or self.decided is not None:
            return
        bucket = self._statuses.get(rnd, {})
        # Pick the lock from the highest round, else any reported
        # preference (deterministically, by sender name), else our own:
        best: Optional[ConsensusMsg] = None
        for status in bucket.values():
            if status.locked_round >= 0 and status.value is not None and (
                best is None or status.locked_round > best.locked_round
            ):
                best = status
        value = best.value if best is not None else (
            self.locked_value or self.preference
        )
        if value is None:
            for sender in sorted(bucket):
                if bucket[sender].value is not None:
                    value = bucket[sender].value
                    break
        if value is None:
            return
        evidence = dict(self.evidence)
        if self.behavior.equivocate_leader:
            # Byzantine leader: equivocate, alternating the value by peer
            # parity (maximises the split of honest opinion).
            for idx, peer in enumerate(self.committee):
                v = Decision.COMMIT if idx % 2 == 0 else Decision.ABORT
                msg = ConsensusMsg(
                    phase=Phase.PROPOSE,
                    round=rnd,
                    payment_id=self.payment_id,
                    value=v,
                    locked_round=best.locked_round if best else -1,
                    evidence=evidence,
                )
                if peer == self.name:
                    self._on_propose(self.name, msg)
                else:
                    self._consensus_send(peer, msg)
            return
        proposal = ConsensusMsg(
            phase=Phase.PROPOSE,
            round=rnd,
            payment_id=self.payment_id,
            value=value,
            locked_round=best.locked_round if best else -1,
            evidence=evidence,
        )
        self._broadcast(proposal)

    # -- ECHO --------------------------------------------------------------------------------

    def _justified(self, value: Decision) -> bool:
        """External validity: only echo decisions someone really asked for."""
        if value is Decision.COMMIT:
            return self.commit_justified or bool(
                self.evidence.get("commit_requested")
            )
        return self.abort_justified or bool(self.evidence.get("abort_requested"))

    def _on_propose(self, sender: str, msg: ConsensusMsg) -> None:
        if self.decided is not None or msg.value is None:
            return
        if sender != self.leader_of(msg.round) or msg.round != self.round:
            return
        if self._proposal_seen.get(msg.round) is not None and not self.behavior.double_vote:
            return
        self._proposal_seen[msg.round] = msg
        # Merge proposal evidence so late notaries learn justification:
        for key, val in msg.evidence.items():
            self.evidence.setdefault(key, val)
        if not self._justified(msg.value):
            return
        if (
            self.locked_value is not None
            and self.locked_value is not msg.value
            and not self.behavior.double_vote
        ):
            # Honest notaries NEVER endorse a value conflicting with
            # their lock.  (No unlock rule: with binary single-shot
            # consensus, quorum arithmetic then makes two conflicting
            # vote quorums impossible for f < N/3 — see module doc.)
            return
        if self.behavior.double_vote:
            # Maximal misbehaviour: endorse BOTH values on any proposal.
            for value in (Decision.COMMIT, Decision.ABORT):
                self._broadcast(
                    ConsensusMsg(
                        phase=Phase.ECHO,
                        round=msg.round,
                        payment_id=self.payment_id,
                        value=value,
                    )
                )
            return
        echo = ConsensusMsg(
            phase=Phase.ECHO,
            round=msg.round,
            payment_id=self.payment_id,
            value=msg.value,
        )
        self._broadcast(echo)

    def _on_echo(self, sender: str, msg: ConsensusMsg) -> None:
        if msg.value is None:
            return
        rounds = self._echoes.setdefault(msg.round, {})
        voters = rounds.setdefault(msg.value, set())
        voters.add(sender)
        if len(voters) >= self.quorum and self.decided is None:
            self._lock_and_vote(msg.round, msg.value)

    def _lock_and_vote(self, rnd: int, value: Decision) -> None:
        already_voted = self.vars_voted(value)
        if (
            self.locked_value is not None
            and self.locked_value is not value
            and not self.behavior.double_vote
        ):
            return  # never abandon a lock for the conflicting value
        self.locked_value = value
        self.locked_round = rnd
        if already_voted:
            return
        vote = Vote.cast(self.identity, self.payment_id, value)
        self._decides[value][self.name] = vote
        decide = ConsensusMsg(
            phase=Phase.DECIDE,
            round=rnd,
            payment_id=self.payment_id,
            value=value,
            vote=vote,
        )
        self._broadcast(decide, include_self=False)
        for subscriber in self.subscribers:
            self.network.send(self, subscriber, MsgKind.CONSENSUS, decide)
        self._check_decided(value)

    def vars_voted(self, value: Decision) -> bool:
        """Whether this notary already cast a DECIDE for ``value``."""
        return self.name in self._decides[value]

    # -- DECIDE ----------------------------------------------------------------------------------

    def _on_decide(self, sender: str, msg: ConsensusMsg) -> None:
        if msg.vote is None or msg.value is None:
            return
        if msg.vote.notary != sender or not msg.vote.valid(self.keyring):
            return
        if msg.vote.decision is not msg.value or msg.vote.payment_id != self.payment_id:
            return
        self._decides[msg.value][sender] = msg.vote
        # A vote quorum is as good as an echo quorum for adopting a lock:
        if len(self._decides[msg.value]) >= self.quorum and not self.vars_voted(
            msg.value
        ):
            self._lock_and_vote(msg.round, msg.value)
        self._check_decided(msg.value)

    def _check_decided(self, value: Decision) -> None:
        if self.decided is not None:
            return
        if len(self._decides[value]) >= self.quorum:
            self.decided = value
            self.cancel_timer("round")
            self.sim.trace.record(
                self.sim.now,
                TraceKind.DECIDE,
                self.name,
                decision=value.value,
                round=self.round,
            )

    # -- certificates ---------------------------------------------------------------------------------

    def quorum_certificate(self, value: Decision) -> Optional[QuorumCertificate]:
        """Assemble a quorum certificate for ``value`` if votes suffice."""
        votes = list(self._decides[value].values())
        cert = QuorumCertificate(
            payment_id=self.payment_id, decision=value, votes=tuple(votes)
        )
        if cert.valid(self.keyring, self.committee, self.quorum):
            return cert
        return None


__all__ = ["Notary", "NotaryBehavior"]
