"""Partially synchronous consensus substrate for the notary-committee
transaction manager (Theorem 3)."""

from .committee import PaymentNotary, QuorumAssembler
from .dls import Notary, NotaryBehavior
from .messages import ConsensusMsg, Phase

__all__ = [
    "ConsensusMsg",
    "Notary",
    "NotaryBehavior",
    "PaymentNotary",
    "Phase",
    "QuorumAssembler",
]
