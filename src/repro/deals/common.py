"""Shared machinery for deal protocols: arc escrows, sessions, outcomes.

Each arc ``(i, j)`` of a deal has its own escrow — in [3] every asset
type lives on its own blockchain, so per-arc isolation is the faithful
model.  An arc escrow owns a ledger funded with the depositor's amount;
deal outcomes are judged by summing per-party deltas across all arc
ledgers and classifying them with :mod:`repro.deals.payoff`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clocks import DriftingClock, PERFECT_CLOCK, random_clock
from ..crypto.keys import KeyRing
from ..errors import DealError
from ..ledger.asset import Amount
from ..ledger.ledger import Ledger
from ..net.adversary import Adversary
from ..net.network import Network
from ..net.timing import TimingModel
from ..sim.kernel import Simulator
from ..sim.process import Process
from .matrix import DealMatrix
from .payoff import acceptable, classify


def arc_escrow_name(i: int, j: int) -> str:
    return f"esc_{i}_{j}"


@dataclass
class DealEnv:
    """World for one deal run."""

    sim: Simulator
    network: Network
    keyring: KeyRing
    matrix: DealMatrix
    ledgers: Dict[Tuple[int, int], Ledger]
    clocks: Dict[str, DriftingClock]
    config: Dict[str, Any] = field(default_factory=dict)

    def clock_of(self, name: str) -> DriftingClock:
        return self.clocks.get(name, PERFECT_CLOCK)


@dataclass
class DealOutcome:
    """Observable result of one deal run."""

    matrix: DealMatrix
    deltas: Dict[int, Dict[str, int]]
    payoff_class: Dict[int, str]
    compliant: Dict[int, bool]
    terminated: Dict[str, bool]
    locks_unresolved: int
    end_time: float
    messages: int

    @property
    def all_transfers_happened(self) -> bool:
        """Their *strong liveness* outcome: everyone in DEAL position."""
        return all(
            self.payoff_class[i] in ("deal", "better")
            for i in range(self.matrix.n_parties)
        )

    def safety_ok(self) -> bool:
        """Their *Safety*: every compliant party's payoff acceptable."""
        return all(
            acceptable(self.matrix, i, self.deltas[i])
            for i in range(self.matrix.n_parties)
            if self.compliant.get(i, True)
        )

    def termination_ok(self) -> bool:
        """Their *Termination*: no compliant party's asset escrowed
        forever (= all locks resolved by the end of the run)."""
        return self.locks_unresolved == 0

    def summary(self) -> Dict[str, Any]:
        return {
            "safety": self.safety_ok(),
            "termination": self.termination_ok(),
            "strong_liveness": self.all_transfers_happened,
            "payoffs": dict(self.payoff_class),
            "end_time": self.end_time,
        }


class DealSession:
    """Build and run one deal protocol instance.

    Parameters mirror :class:`~repro.core.session.PaymentSession`;
    ``protocol_factory`` is a callable ``(env, byzantine, options) ->
    (parties, escrows)`` returning the processes to run (see
    :mod:`repro.deals.timelock` / :mod:`repro.deals.certified`).
    """

    def __init__(
        self,
        matrix: DealMatrix,
        protocol_factory: Callable[..., Tuple[List[Process], List[Process]]],
        timing: TimingModel,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        rho: float = 0.0,
        byzantine: Optional[Dict[int, str]] = None,
        options: Optional[Dict[str, Any]] = None,
        horizon: float = 100_000.0,
    ) -> None:
        self.matrix = matrix
        self.protocol_factory = protocol_factory
        self.timing = timing
        self.adversary = adversary
        self.seed = seed
        self.rho = rho
        self.byzantine = dict(byzantine or {})
        self.options = dict(options or {})
        self.horizon = horizon

    def _build_env(self) -> DealEnv:
        sim = Simulator(seed=self.seed)
        network = Network(sim, self.timing, self.adversary)
        keyring = KeyRing(domain="deal")
        ledgers: Dict[Tuple[int, int], Ledger] = {}
        for i, j, amount in self.matrix.arcs():
            ledger = Ledger(name=arc_escrow_name(i, j), sim=sim)
            ledger.open_account(self.matrix.parties[i])
            ledger.open_account(self.matrix.parties[j])
            ledger.mint(self.matrix.parties[i], amount)
            ledgers[(i, j)] = ledger
        clocks: Dict[str, DriftingClock] = {}
        if self.rho > 0:
            names = list(self.matrix.parties) + [
                arc_escrow_name(i, j) for i, j, _ in self.matrix.arcs()
            ]
            for name in names:
                clocks[name] = random_clock(
                    sim.rng.stream(f"clock.{name}"), self.rho
                )
        return DealEnv(
            sim=sim,
            network=network,
            keyring=keyring,
            matrix=self.matrix,
            ledgers=ledgers,
            clocks=clocks,
            config={"byzantine": self.byzantine, "options": self.options},
        )

    def run(self) -> DealOutcome:
        env = self._build_env()
        built = self.protocol_factory(env, self.byzantine, self.options)
        if len(built) == 3:
            parties, escrows, infrastructure = built
        else:
            parties, escrows = built
            infrastructure = []
        for process in infrastructure + escrows + parties:
            env.network.register(process)
            process.start()
        # Infrastructure (chains, observers) runs forever; only parties
        # and arc escrows gate completion.
        env.sim.add_stop_condition(
            lambda sim: all(p.terminated for p in parties + escrows)
        )
        env.sim.run(until=self.horizon)
        return self._collect(env, parties, escrows)

    def _collect(
        self, env: DealEnv, parties: List[Process], escrows: List[Process]
    ) -> DealOutcome:
        deltas: Dict[int, Dict[str, int]] = {}
        for p in range(self.matrix.n_parties):
            name = self.matrix.parties[p]
            delta: Dict[str, int] = {}
            for (i, j), ledger in env.ledgers.items():
                if not ledger.has_account(name):
                    continue
                for asset, units in ledger.account(name).snapshot().items():
                    delta[asset] = delta.get(asset, 0) + units
            # Subtract the initial funding (depositor side):
            for j, amount in self.matrix.out_arcs(p):
                delta[amount.asset] = delta.get(amount.asset, 0) - amount.units
            deltas[p] = {a: u for a, u in delta.items() if u != 0}
        unresolved = sum(
            len([l for l in ledger.locks() if l.held])
            for ledger in env.ledgers.values()
        )
        return DealOutcome(
            matrix=self.matrix,
            deltas=deltas,
            payoff_class={
                p: classify(self.matrix, p, deltas[p])
                for p in range(self.matrix.n_parties)
            },
            compliant={
                p: p not in self.byzantine for p in range(self.matrix.n_parties)
            },
            terminated={pr.name: pr.terminated for pr in parties},
            locks_unresolved=unresolved,
            end_time=env.sim.now,
            messages=env.network.stats.sent,
        )


__all__ = ["DealEnv", "DealOutcome", "DealSession", "arc_escrow_name"]
