"""The certified-blockchain commit protocol for deals (Herlihy et al.).

Arc escrows are *decision-conditioned* (no hash-locks, no deadlines):
funds move only on a commit decision, return on abort.  The decision is
derived from a shared certified blockchain: every arc escrow publishes
an "escrowed" record; parties may publish abort requests when they lose
patience; the first of {abort published, all arcs escrowed} in log
order wins.

Per [3] (and our paper's Section 5): Safety and Termination hold even
under partial synchrony, but **strong liveness** cannot — an abort
published while some escrow's record is still in the mempool kills a
deal everyone wanted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..clocks import DriftingClock, PERFECT_CLOCK
from ..crypto.certificates import Decision, DecisionCertificate
from ..crypto.keys import Identity
from ..errors import DealError
from ..ledger.asset import Amount
from ..ledger.blockchain import Receipt, SimpleChain
from ..ledger.contracts import CertifiedBroadcastContract, PublicationRecord
from ..ledger.ledger import Ledger
from ..net.message import Envelope, MsgKind
from ..sim.process import Process
from ..sim.trace import TraceKind
from .common import DealEnv, arc_escrow_name
from .matrix import DealMatrix


class CertifiedArcEscrow(Process):
    """Decision-conditioned escrow for one deal arc."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        ledger: Ledger,
        depositor: str,
        beneficiary: str,
        amount: Amount,
        chain_name: str,
        observer_name: str,
        keyring: Any,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.ledger = ledger
        self.depositor = depositor
        self.beneficiary = beneficiary
        self.amount = amount
        self.chain_name = chain_name
        self.observer_name = observer_name
        self.keyring = keyring
        self.lock_id: Optional[str] = None
        self.decision: Optional[Decision] = None

    def handle_message(self, message: Envelope) -> None:
        if message.kind is MsgKind.MONEY and message.sender == self.depositor:
            self._on_deposit(message)
        elif message.kind is MsgKind.DECISION and message.sender == self.observer_name:
            self._on_decision(message)

    def _on_deposit(self, message: Envelope) -> None:
        payload = message.payload
        if self.lock_id is not None or self.decision is not None:
            return
        if not isinstance(payload, dict) or payload.get("amount") != self.amount:
            return
        if not self.ledger.account(self.depositor).can_pay(self.amount):
            return
        lock = self.ledger.escrow_deposit(
            depositor=self.depositor,
            beneficiary=self.beneficiary,
            amt=self.amount,
            lock_id=f"{self.name}/lock",
        )
        self.lock_id = lock.lock_id
        # Acknowledge custody to the depositor (she only awaits refunds
        # for deposits that were actually locked):
        self.network.send(
            self,
            self.depositor,
            MsgKind.MONEY,
            {"note": "locked", "arc": self.name},
        )
        # Publish the escrowed record on the certified chain:
        self.network.send(
            self,
            self.chain_name,
            MsgKind.CONTROL,
            {
                "op": "submit_tx",
                "contract": "log",
                "method": "publish",
                "args": {"payload": {"kind": "escrowed", "arc": self.name}},
            },
        )

    def _on_decision(self, message: Envelope) -> None:
        cert = message.payload
        if self.decision is not None or not isinstance(cert, DecisionCertificate):
            return
        if not cert.valid(self.keyring, expected_issuer=self.observer_name):
            return
        self.decision = cert.decision
        if self.lock_id is not None:
            if cert.decision is Decision.COMMIT:
                self.ledger.escrow_release(self.lock_id)
                self.network.send(
                    self,
                    self.beneficiary,
                    MsgKind.MONEY,
                    {"note": "payment", "arc": self.name},
                )
            else:
                self.ledger.escrow_refund(self.lock_id)
                self.network.send(
                    self,
                    self.depositor,
                    MsgKind.MONEY,
                    {"note": "refund", "arc": self.name},
                )
        self.terminate(reason=f"decision {cert.decision.value}")


class CertifiedDealObserver(Process):
    """Derives the deal decision from the certified log."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        chain: SimpleChain,
        identity: Identity,
        arcs: List[str],
        recipients: List[str],
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.chain = chain
        self.identity = identity
        self.arcs = set(arcs)
        self.recipients = list(recipients)
        self.broadcasted = False
        chain.subscribe_finality(self._on_finality)

    def _on_finality(self, receipt: Receipt) -> None:
        if self.broadcasted or not receipt.ok:
            return
        contract = self.chain.contract("log")
        assert isinstance(contract, CertifiedBroadcastContract)
        decision = self._derive(contract.log, receipt.block_height)
        if decision is None:
            return
        self.broadcasted = True
        cert = DecisionCertificate.issue(self.identity, "deal", decision)
        self.sim.trace.record(
            self.sim.now, TraceKind.CERT_ISSUED, self.name, cert=decision.value
        )
        for recipient in self.recipients:
            self.network.send(self, recipient, MsgKind.DECISION, cert)

    def _derive(self, log: List[PublicationRecord], up_to: int) -> Optional[Decision]:
        escrowed: Set[str] = set()
        for record in log:
            if record.height > up_to:
                break
            payload = record.payload
            if not isinstance(payload, dict):
                continue
            if payload.get("kind") == "abort":
                return Decision.ABORT
            if payload.get("kind") == "escrowed":
                escrowed.add(str(payload.get("arc")))
            if escrowed == self.arcs:
                return Decision.COMMIT
        return None


class CertifiedDealParty(Process):
    """A party: escrows outgoing arcs, may publish abort on impatience."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        index: int,
        matrix: DealMatrix,
        chain_name: str,
        observer_name: str,
        keyring: Any,
        patience_local: Optional[float],
        clock: DriftingClock = PERFECT_CLOCK,
        behavior: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.index = index
        self.matrix = matrix
        self.chain_name = chain_name
        self.observer_name = observer_name
        self.keyring = keyring
        self.patience_local = patience_local
        self.clock = clock
        self.behavior = behavior
        self.decision: Optional[Decision] = None
        self.resolved_arcs: set = set()
        self.locked_arcs: set = set()

    def start(self) -> None:
        if self.patience_local is not None:
            self.set_timer_at(
                "patience", self.clock.global_time(self.patience_local)
            )
        if self.behavior == "abort_immediately":
            self._publish_abort()
            return
        if self.behavior == "never_escrow":
            return
        for j, amount in self.matrix.out_arcs(self.index):
            self.network.send(
                self,
                arc_escrow_name(self.index, j),
                MsgKind.MONEY,
                {"amount": amount},
            )

    def _publish_abort(self) -> None:
        self.network.send(
            self,
            self.chain_name,
            MsgKind.CONTROL,
            {
                "op": "submit_tx",
                "contract": "log",
                "method": "publish",
                "args": {"payload": {"kind": "abort", "party": self.name}},
            },
        )

    def on_timer(self, timer_id: str) -> None:
        if timer_id == "patience" and self.decision is None:
            self._publish_abort()

    def handle_message(self, message: Envelope) -> None:
        if message.kind is MsgKind.DECISION and message.sender == self.observer_name:
            cert = message.payload
            if isinstance(cert, DecisionCertificate) and cert.valid(
                self.keyring, expected_issuer=self.observer_name
            ):
                if self.decision is None:
                    self.decision = cert.decision
                    self.cancel_timer("patience")
                    self.sim.trace.record(
                        self.sim.now,
                        TraceKind.CERT_RECEIVED,
                        self.name,
                        cert=cert.decision.value,
                    )
                    self._maybe_finish()
        elif message.kind is MsgKind.MONEY:
            payload = message.payload
            if isinstance(payload, dict):
                if payload.get("note") == "locked":
                    self.locked_arcs.add(payload.get("arc"))
                else:
                    self.resolved_arcs.add(payload.get("arc"))
                self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.decision is None:
            return
        if self.decision is Decision.COMMIT:
            expected = {
                arc_escrow_name(i, self.index)
                for i, _ in self.matrix.in_arcs(self.index)
            }
        else:
            # Await refunds only for deposits the escrows acknowledged:
            expected = set(self.locked_arcs)
        if expected <= self.resolved_arcs:
            self.terminate(reason=f"deal {self.decision.value}")


def build_certified_deal(
    env: DealEnv, byzantine: Dict[int, str], options: Dict[str, Any]
) -> Tuple[List[Process], List[Process]]:
    """Protocol factory for :class:`~repro.deals.common.DealSession`."""
    matrix = env.matrix
    chain_name = "dealcbc"
    observer_name = "dealobserver"
    chain = SimpleChain(
        env.sim,
        chain_name,
        block_interval=float(options.get("block_interval", 1.0)),
        confirmations=int(options.get("confirmations", 1)),
    )
    chain.deploy(CertifiedBroadcastContract(address="log"))
    arc_names = [arc_escrow_name(i, j) for i, j, _ in matrix.arcs()]
    recipients = list(matrix.parties) + arc_names
    observer = CertifiedDealObserver(
        sim=env.sim,
        name=observer_name,
        network=env.network,
        chain=chain,
        identity=env.keyring.create(observer_name),
        arcs=arc_names,
        recipients=recipients,
    )
    infrastructure: List[Process] = [chain, observer]
    escrows: List[Process] = []
    for i, j, amount in matrix.arcs():
        name = arc_escrow_name(i, j)
        escrows.append(
            CertifiedArcEscrow(
                sim=env.sim,
                name=name,
                network=env.network,
                ledger=env.ledgers[(i, j)],
                depositor=matrix.parties[i],
                beneficiary=matrix.parties[j],
                amount=amount,
                chain_name=chain_name,
                observer_name=observer_name,
                keyring=env.keyring,
            )
        )
    patience = options.get("patience", None)
    parties: List[Process] = []
    for p in range(matrix.n_parties):
        name = matrix.parties[p]
        clock = env.clock_of(name)
        parties.append(
            CertifiedDealParty(
                sim=env.sim,
                name=name,
                network=env.network,
                index=p,
                matrix=matrix,
                chain_name=chain_name,
                observer_name=observer_name,
                keyring=env.keyring,
                patience_local=(
                    clock.local_time(env.sim.now) + float(patience)
                    if patience is not None
                    else None
                ),
                clock=clock,
                behavior=byzantine.get(p),
            )
        )
    return parties, escrows, infrastructure


__all__ = [
    "CertifiedArcEscrow",
    "CertifiedDealObserver",
    "CertifiedDealParty",
    "build_certified_deal",
]
