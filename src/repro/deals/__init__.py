"""Cross-chain deals (Herlihy–Liskov–Shrira) and the Section 5
comparison with cross-chain payments."""

from .certified import build_certified_deal
from .common import DealEnv, DealOutcome, DealSession, arc_escrow_name
from .matrix import DealMatrix
from .payoff import acceptable, classify, deal_position, dominates
from .reduction import (
    all_abort_acceptable_for_deal,
    deal_as_payment,
    payment_as_deal,
    payment_deal_is_well_formed,
    separation_report,
)
from .timelock import build_timelock_deal

__all__ = [
    "DealEnv",
    "DealMatrix",
    "DealOutcome",
    "DealSession",
    "acceptable",
    "all_abort_acceptable_for_deal",
    "arc_escrow_name",
    "build_certified_deal",
    "build_timelock_deal",
    "classify",
    "deal_as_payment",
    "deal_position",
    "dominates",
    "payment_as_deal",
    "payment_deal_is_well_formed",
    "separation_report",
]
