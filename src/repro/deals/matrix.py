"""Deal matrices and their digraphs (Herlihy–Liskov–Shrira).

A cross-chain *deal* among parties ``p_0 … p_{k-1}`` is a matrix ``M``
where ``M[i][j]`` lists the asset amount party ``i`` transfers to party
``j``.  Equivalently a digraph with an arc ``i -> j`` labelled ``v``
iff ``M[i][j] = v ≠ 0``.  The protocols of [3] are proven correct for
**well-formed** deals: those whose digraph is strongly connected.

This module is dependency-free (strong connectivity via Kosaraju);
:func:`to_networkx` is offered for analysis when networkx is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DealError
from ..ledger.asset import Amount

Arc = Tuple[int, int]


@dataclass(frozen=True)
class DealMatrix:
    """The matrix ``M`` of one cross-chain deal."""

    parties: Tuple[str, ...]
    entries: Tuple[Tuple[int, int, Amount], ...]  # (i, j, amount)

    def __post_init__(self) -> None:
        if len(set(self.parties)) != len(self.parties):
            raise DealError("party names must be distinct")
        k = len(self.parties)
        seen: Set[Arc] = set()
        for i, j, amount in self.entries:
            if not (0 <= i < k and 0 <= j < k):
                raise DealError(f"arc ({i},{j}) out of range for {k} parties")
            if i == j:
                raise DealError(f"self-transfer at party {i}")
            if (i, j) in seen:
                raise DealError(f"duplicate arc ({i},{j})")
            if not amount.is_positive:
                raise DealError(f"arc ({i},{j}) must carry positive value")
            seen.add((i, j))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(
        cls, parties: Sequence[str], arcs: Dict[Arc, Amount]
    ) -> "DealMatrix":
        return cls(
            parties=tuple(parties),
            entries=tuple((i, j, amt) for (i, j), amt in sorted(arcs.items())),
        )

    @classmethod
    def cycle(
        cls, parties: Sequence[str], units: int = 100, asset_prefix: str = "A"
    ) -> "DealMatrix":
        """A circular swap: each party pays the next, distinct assets."""
        k = len(parties)
        if k < 2:
            raise DealError("a cycle needs at least two parties")
        arcs = {
            (i, (i + 1) % k): Amount(f"{asset_prefix}{i}", units) for i in range(k)
        }
        return cls.from_dict(parties, arcs)

    @classmethod
    def path(
        cls, parties: Sequence[str], units: int = 100, asset: str = "A"
    ) -> "DealMatrix":
        """A one-way chain — the shape of a cross-chain *payment*.

        Deliberately **not** well-formed (no arc back), which is half of
        the Section 5 separation argument.
        """
        k = len(parties)
        if k < 2:
            raise DealError("a path needs at least two parties")
        arcs = {(i, i + 1): Amount(asset, units) for i in range(k - 1)}
        return cls.from_dict(parties, arcs)

    @classmethod
    def clique(
        cls, parties: Sequence[str], units: int = 10, asset_prefix: str = "A"
    ) -> "DealMatrix":
        """Everybody pays everybody (dense market deal)."""
        k = len(parties)
        arcs = {}
        for i in range(k):
            for j in range(k):
                if i != j:
                    arcs[(i, j)] = Amount(f"{asset_prefix}{i}", units)
        return cls.from_dict(parties, arcs)

    # -- structure ---------------------------------------------------------------

    @property
    def n_parties(self) -> int:
        return len(self.parties)

    def arcs(self) -> List[Tuple[int, int, Amount]]:
        return list(self.entries)

    def out_arcs(self, i: int) -> List[Tuple[int, Amount]]:
        return [(j, amt) for (a, j, amt) in self.entries if a == i]

    def in_arcs(self, j: int) -> List[Tuple[int, Amount]]:
        return [(i, amt) for (i, b, amt) in self.entries if b == j]

    def successors(self, i: int) -> List[int]:
        return [j for (a, j, _amt) in self.entries if a == i]

    def predecessors(self, j: int) -> List[int]:
        return [i for (i, b, _amt) in self.entries if b == j]

    # -- well-formedness ------------------------------------------------------------

    def is_well_formed(self) -> bool:
        """Strong connectivity of the deal digraph (definition of [3])."""
        k = self.n_parties
        if k == 0:
            return False
        # Parties with no arcs at all make the graph trivially disconnected:
        touched = {i for (i, _j, _a) in self.entries} | {
            j for (_i, j, _a) in self.entries
        }
        if touched != set(range(k)):
            return False
        return (
            self._reaches_all(0, self.successors)
            and self._reaches_all(0, self.predecessors)
        )

    def _reaches_all(self, start: int, step) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in step(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == self.n_parties

    def distances_to(self, target: int) -> Dict[int, int]:
        """BFS distance from each party to ``target`` along arcs.

        Used by the timelock protocol: the secret propagates backwards
        along arcs, so a party at distance ``d`` learns it after ``d``
        claim steps.
        """
        dist = {target: 0}
        frontier = [target]
        while frontier:
            node = frontier.pop(0)
            for pred in self.predecessors(node):
                if pred not in dist:
                    dist[pred] = dist[node] + 1
                    frontier.append(pred)
        return dist

    def party_delta_on_completion(self, i: int) -> Dict[str, int]:
        """Per-asset position change of party ``i`` if every transfer
        happens."""
        delta: Dict[str, int] = {}
        for j, amt in self.in_arcs(i):
            delta[amt.asset] = delta.get(amt.asset, 0) + amt.units
        for j, amt in self.out_arcs(i):
            delta[amt.asset] = delta.get(amt.asset, 0) - amt.units
        return {a: u for a, u in delta.items() if u != 0}

    def to_networkx(self):  # pragma: no cover - convenience only
        """Build a ``networkx.DiGraph`` (requires networkx)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_parties))
        for i, j, amt in self.entries:
            graph.add_edge(i, j, amount=amt)
        return graph


__all__ = ["Arc", "DealMatrix"]
