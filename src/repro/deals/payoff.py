"""Acceptable payoffs — the Safety notion of cross-chain deals.

From the paper's Section 5 (after [3]): a payoff is *acceptable* to a
party ``i`` if she either receives all ``M[j][i]`` while parting with
all ``M[i][j]`` (the DEAL position), or loses nothing at all (the
NOTHING position); any outcome where she loses less and/or gains more
than an acceptable outcome is also acceptable.

We compare per-asset integer deltas componentwise: ``delta`` dominates
``base`` iff ``delta[a] >= base[a]`` for every asset ``a``.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .matrix import DealMatrix

AssetDelta = Mapping[str, int]


def dominates(delta: AssetDelta, base: AssetDelta) -> bool:
    """Componentwise ``delta >= base`` over the union of assets."""
    assets = set(delta) | set(base)
    return all(delta.get(a, 0) >= base.get(a, 0) for a in assets)


def deal_position(matrix: DealMatrix, party: int) -> Dict[str, int]:
    """The full-completion position of ``party``."""
    return matrix.party_delta_on_completion(party)


def acceptable(matrix: DealMatrix, party: int, delta: AssetDelta) -> bool:
    """Whether ``delta`` is an acceptable payoff for ``party``.

    Acceptable = dominates the DEAL position, or dominates the NOTHING
    position (all-zero).
    """
    return dominates(delta, deal_position(matrix, party)) or dominates(delta, {})


def classify(matrix: DealMatrix, party: int, delta: AssetDelta) -> str:
    """Human-readable payoff class: ``deal`` / ``nothing`` / ``better``
    / ``unacceptable``."""
    deal = deal_position(matrix, party)
    clean = {a: u for a, u in delta.items() if u != 0}
    if clean == deal:
        return "deal"
    if not clean:
        return "nothing"
    if acceptable(matrix, party, delta):
        return "better"
    return "unacceptable"


__all__ = ["acceptable", "classify", "deal_position", "dominates"]
