"""Separation witnesses: payments are not deals, deals are not payments.

The paper's Section 5 closes with: "we show that the cross-chain
payment cannot be seen as a special kind of cross-chain deal, nor vice
versa."  This module makes both directions *executable*:

Payment ↛ Deal
    The natural deal encoding of a payment (the path digraph of
    Figure 1) is **not well-formed** — the money flows one way, so the
    digraph is not strongly connected, and [3]'s protocols (and their
    correctness proofs) do not apply.  Moreover the deal specification
    *permits the trivial all-abort protocol* (every party keeps her
    assets: a NOTHING payoff is acceptable and termination holds),
    whereas the payment specification forbids it: strong liveness (L)
    requires Bob to be paid in all-honest runs, and CS1 demands a
    certificate when Alice's money moves.

Deal ↛ Payment
    A payment has one source (Alice) and one sink (Bob) of value along
    a path, with every intermediary flow-neutral-or-better.  A cyclic
    swap deal gives *every* party both an in-arc and an out-arc; no
    assignment of deal parties to the path roles of Figure 1 preserves
    the transfer structure.  :func:`deal_as_payment` attempts the
    extraction and provably fails on cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.topology import PaymentTopology
from ..errors import DealError
from .matrix import DealMatrix


def payment_as_deal(topology: PaymentTopology) -> DealMatrix:
    """Encode a payment's transfer structure as a deal matrix.

    Parties are the customers ``c_0 … c_n``; arc ``(i, i+1)`` carries
    ``amounts[i]`` (the value through escrow ``e_i``).
    """
    arcs = {
        (i, i + 1): topology.amount_at(i) for i in range(topology.n_escrows)
    }
    return DealMatrix.from_dict(topology.customers(), arcs)


def payment_deal_is_well_formed(topology: PaymentTopology) -> bool:
    """Whether the payment's deal encoding is a well-formed deal.

    Always ``False`` for ``n >= 1``: a path is never strongly connected.
    """
    return payment_as_deal(topology).is_well_formed()


def all_abort_acceptable_for_deal(matrix: DealMatrix) -> bool:
    """Whether the all-abort outcome satisfies the deal Safety notion.

    Trivially ``True``: every party ends in the NOTHING position, which
    is acceptable.  The payment problem explicitly forbids this
    protocol (it violates strong liveness L, and the paper calls the
    exclusion out in the introduction).
    """
    from .payoff import acceptable

    return all(acceptable(matrix, p, {}) for p in range(matrix.n_parties))


def deal_as_payment(matrix: DealMatrix) -> Optional[PaymentTopology]:
    """Try to express a deal as a cross-chain payment path.

    Succeeds only when the transfer structure *is* a path: exactly one
    party with out-degree 1 / in-degree 0 (Alice), one with in-degree 1
    / out-degree 0 (Bob), every other party with in-degree = out-degree
    = 1, and the arcs forming a single simple chain.  Returns ``None``
    otherwise — in particular for every well-formed (strongly
    connected) deal with ≥ 2 parties, since those have no source.
    """
    k = matrix.n_parties
    out_deg = {p: len(matrix.out_arcs(p)) for p in range(k)}
    in_deg = {p: len(matrix.in_arcs(p)) for p in range(k)}
    sources = [p for p in range(k) if out_deg[p] == 1 and in_deg[p] == 0]
    sinks = [p for p in range(k) if in_deg[p] == 1 and out_deg[p] == 0]
    middles = [p for p in range(k) if in_deg[p] == 1 and out_deg[p] == 1]
    if len(sources) != 1 or len(sinks) != 1 or len(middles) != k - 2:
        return None
    # Walk the chain from the source and check it visits everyone:
    order = [sources[0]]
    amounts = []
    while True:
        outs = matrix.out_arcs(order[-1])
        if not outs:
            break
        nxt, amount = outs[0]
        if nxt in order:
            return None  # a cycle, not a path
        order.append(nxt)
        amounts.append(amount)
    if len(order) != k or order[-1] != sinks[0]:
        return None
    return PaymentTopology(
        n_escrows=len(amounts), amounts=tuple(amounts), payment_id="from-deal"
    )


def separation_report() -> Dict[str, object]:
    """Run both separation witnesses and return the evidence."""
    payment = PaymentTopology.linear(3)
    as_deal = payment_as_deal(payment)
    cycle = DealMatrix.cycle(["p0", "p1", "p2"])
    return {
        "payment_path_well_formed_as_deal": as_deal.is_well_formed(),  # False
        "all_abort_acceptable_for_deals": all_abort_acceptable_for_deal(cycle),  # True
        "cyclic_deal_expressible_as_payment": deal_as_payment(cycle) is not None,  # False
        "path_deal_expressible_as_payment": deal_as_payment(as_deal) is not None,  # True
    }


__all__ = [
    "all_abort_acceptable_for_deal",
    "deal_as_payment",
    "payment_as_deal",
    "payment_deal_is_well_formed",
    "separation_report",
]
