"""The timelock commit protocol for cross-chain deals (Herlihy et al.).

One leader (party 0 by convention) knows a secret ``s``; every arc
``(i, j)`` is escrowed under ``h = H(s)`` with a deadline proportional
to how long the secret needs to reach the claimer::

    deadline(i, j) = start + (dist(j -> leader) + 1) * step

The secret propagates *backwards* along arcs: the leader claims its
incoming arcs (revealing ``s`` to their depositors), each depositor can
then claim her own incoming arcs, and so on; strong connectivity
guarantees everyone is reached.  All three of the paper's deal
properties (Safety / Termination / Strong liveness) hold under
synchrony; under partial synchrony a delayed reveal lets a deadline
fire *after* the party's outgoing arc was already claimed — the Safety
loss that experiment E6 shows.

Byzantine party behaviours: ``"never_escrow"``, ``"withhold_secret"``
(claims her incoming arcs but never triggers... in fact withholding
means not claiming, which only hurts herself and those upstream of the
reveal chain — both demonstrated in tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..clocks import DriftingClock, PERFECT_CLOCK
from ..crypto.hashlock import HashLock, Preimage, new_secret
from ..errors import DealError
from ..ledger.asset import Amount
from ..ledger.ledger import Ledger
from ..net.message import Envelope, MsgKind
from ..sim.process import Process
from ..sim.trace import TraceKind
from .common import DealEnv, arc_escrow_name
from .matrix import DealMatrix


class TimelockArcEscrow(Process):
    """Hash-timelock escrow for a single deal arc."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        ledger: Ledger,
        depositor: str,
        beneficiary: str,
        amount: Amount,
        hashlock: HashLock,
        observers: List[str],
        clock: DriftingClock = PERFECT_CLOCK,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.ledger = ledger
        self.depositor = depositor
        self.beneficiary = beneficiary
        self.amount = amount
        self.hashlock = hashlock
        self.observers = list(observers)
        self.clock = clock
        self.lock_id: Optional[str] = None
        self.deadline_local: Optional[float] = None
        self.resolved = False

    @property
    def now_local(self) -> float:
        return self.clock.local_time(self.sim.now)

    def handle_message(self, message: Envelope) -> None:
        if message.kind is MsgKind.MONEY and message.sender == self.depositor:
            self._on_deposit(message)
        elif message.kind is MsgKind.CLAIM and message.sender == self.beneficiary:
            self._on_claim(message)

    def _on_deposit(self, message: Envelope) -> None:
        payload = message.payload
        if self.lock_id is not None or not isinstance(payload, dict):
            return
        if payload.get("amount") != self.amount:
            return
        if not self.ledger.account(self.depositor).can_pay(self.amount):
            return
        lock = self.ledger.escrow_deposit(
            depositor=self.depositor,
            beneficiary=self.beneficiary,
            amt=self.amount,
            lock_id=f"{self.name}/lock",
        )
        self.lock_id = lock.lock_id
        self.deadline_local = float(payload["deadline"])
        self.set_timer_at("deadline", self.clock.global_time(self.deadline_local))
        # Escrow setup is public (it is a blockchain): announce to all.
        for observer in self.observers:
            self.network.send(
                self,
                observer,
                MsgKind.HASHLOCK_SETUP,
                {"arc": self.name, "deadline": self.deadline_local},
            )

    def _on_claim(self, message: Envelope) -> None:
        payload = message.payload
        if self.resolved or self.lock_id is None or not isinstance(payload, dict):
            return
        preimage = payload.get("preimage")
        if not isinstance(preimage, Preimage) or not self.hashlock.matches(preimage):
            return
        if self.deadline_local is not None and self.now_local >= self.deadline_local:
            return
        self.resolved = True
        self.cancel_timer("deadline")
        self.ledger.escrow_release(self.lock_id)
        self.network.send(
            self, self.beneficiary, MsgKind.MONEY, {"note": "payment", "arc": self.name}
        )
        # The on-chain claim reveals the preimage to the depositor:
        self.network.send(
            self, self.depositor, MsgKind.SECRET, {"preimage": preimage, "arc": self.name}
        )
        self.terminate(reason="claimed")

    def on_timer(self, timer_id: str) -> None:
        if timer_id != "deadline" or self.resolved or self.lock_id is None:
            return
        self.resolved = True
        self.ledger.escrow_refund(self.lock_id)
        self.network.send(
            self, self.depositor, MsgKind.MONEY, {"note": "refund", "arc": self.name}
        )
        self.terminate(reason="refunded")


class TimelockDealParty(Process):
    """One deal participant running the timelock protocol."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        index: int,
        matrix: DealMatrix,
        hashlock: HashLock,
        secret: Optional[Preimage],
        deadlines: Dict[Tuple[int, int], float],
        total_arcs: int,
        give_up_local: float,
        clock: DriftingClock = PERFECT_CLOCK,
        behavior: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name)
        self.network = network
        self.index = index
        self.matrix = matrix
        self.hashlock = hashlock
        self.secret = secret
        self.deadlines = deadlines
        self.total_arcs = total_arcs
        self.give_up_local = give_up_local
        self.clock = clock
        self.behavior = behavior
        self.setups_seen: set = set()
        self.claimed_incoming = False
        self.resolved_arcs: set = set()

    @property
    def now_local(self) -> float:
        return self.clock.local_time(self.sim.now)

    @property
    def is_leader(self) -> bool:
        return self.index == 0

    def start(self) -> None:
        self.set_timer_at("give_up", self.clock.global_time(self.give_up_local))
        if self.behavior == "never_escrow":
            return
        for j, amount in self.matrix.out_arcs(self.index):
            self.network.send(
                self,
                arc_escrow_name(self.index, j),
                MsgKind.MONEY,
                {"amount": amount, "deadline": self.deadlines[(self.index, j)]},
            )

    def handle_message(self, message: Envelope) -> None:
        if message.kind is MsgKind.HASHLOCK_SETUP:
            payload = message.payload
            if isinstance(payload, dict):
                self.setups_seen.add(payload.get("arc"))
                if (
                    self.is_leader
                    and len(self.setups_seen) == self.total_arcs
                    and not self.claimed_incoming
                ):
                    self._claim_incoming()
        elif message.kind is MsgKind.SECRET:
            payload = message.payload
            preimage = payload.get("preimage") if isinstance(payload, dict) else None
            if isinstance(preimage, Preimage) and self.hashlock.matches(preimage):
                self.secret = preimage
                self._note_resolved(payload.get("arc"))
                self._claim_incoming()
        elif message.kind is MsgKind.MONEY:
            payload = message.payload
            if isinstance(payload, dict):
                self._note_resolved(payload.get("arc"))

    def _claim_incoming(self) -> None:
        if self.claimed_incoming or self.secret is None:
            return
        if self.behavior == "withhold_secret" and not self.is_leader:
            return
        self.claimed_incoming = True
        for i, _amount in self.matrix.in_arcs(self.index):
            self.network.send(
                self,
                arc_escrow_name(i, self.index),
                MsgKind.CLAIM,
                {"preimage": self.secret},
            )

    def _note_resolved(self, arc: Any) -> None:
        if arc is not None:
            self.resolved_arcs.add(arc)
        own = {
            arc_escrow_name(self.index, j) for j, _ in self.matrix.out_arcs(self.index)
        } | {
            arc_escrow_name(i, self.index) for i, _ in self.matrix.in_arcs(self.index)
        }
        if own <= self.resolved_arcs:
            self.terminate(reason="all own arcs resolved")

    def on_timer(self, timer_id: str) -> None:
        if timer_id == "give_up" and not self.terminated:
            self.terminate(reason="gave up")


def build_timelock_deal(
    env: DealEnv, byzantine: Dict[int, str], options: Dict[str, Any]
) -> Tuple[List[Process], List[Process]]:
    """Protocol factory for :class:`~repro.deals.common.DealSession`."""
    matrix = env.matrix
    if not matrix.is_well_formed():
        raise DealError(
            "the timelock commit protocol is only defined for well-formed "
            "(strongly connected) deals"
        )
    step = float(options.get("step", 8.0))
    leader = int(options.get("leader", 0))
    if leader != 0:
        raise DealError("party 0 is the leader by convention")
    secret = new_secret("deal-secret")
    hashlock = secret.lock()
    dist = matrix.distances_to(leader)
    start_local = 0.0
    deadlines: Dict[Tuple[int, int], float] = {}
    max_deadline = 0.0
    for i, j, _amount in matrix.arcs():
        deadline = start_local + (dist[j] + 1) * step
        deadlines[(i, j)] = deadline
        max_deadline = max(max_deadline, deadline)
    observers = list(matrix.parties)
    escrows: List[Process] = []
    for i, j, amount in matrix.arcs():
        name = arc_escrow_name(i, j)
        escrows.append(
            TimelockArcEscrow(
                sim=env.sim,
                name=name,
                network=env.network,
                ledger=env.ledgers[(i, j)],
                depositor=matrix.parties[i],
                beneficiary=matrix.parties[j],
                amount=amount,
                hashlock=hashlock,
                observers=observers,
                clock=env.clock_of(name),
            )
        )
    parties: List[Process] = []
    for p in range(matrix.n_parties):
        name = matrix.parties[p]
        parties.append(
            TimelockDealParty(
                sim=env.sim,
                name=name,
                network=env.network,
                index=p,
                matrix=matrix,
                hashlock=hashlock,
                secret=secret if p == leader else None,
                deadlines=deadlines,
                total_arcs=len(matrix.arcs()),
                give_up_local=max_deadline + 4.0 * step,
                clock=env.clock_of(name),
                behavior=byzantine.get(p),
            )
        )
    return parties, escrows


__all__ = ["TimelockArcEscrow", "TimelockDealParty", "build_timelock_deal"]
