"""repro — reproduction of *Feasibility of Cross-Chain Payment with
Success Guarantees* (van Glabbeek, Gramoli, Tholoniat; SPAA 2020).

A discrete-event-simulation library implementing:

* the paper's model — escrows, customers, drifting clocks, and the
  three synchrony assumptions (synchrony / partial synchrony /
  asynchrony);
* the ANTA timed-automata formalism and the Figure 2 protocol
  (Theorem 1), with the drift-tuned timeout calculus;
* the weak-liveness protocol of Theorem 3 with pluggable transaction
  managers (trusted party, smart contract, BFT notary committee);
* baseline protocols (HTLC, certified-blockchain commit) and the
  cross-chain *deals* of Herlihy–Liskov–Shrira for the Section 5
  comparison;
* executable property checkers for C / T / ES / CS1–3 / L / CC, an
  adaptive adversary demonstrating Theorem 2, and a bounded exhaustive
  explorer for small instances.

Quickstart
----------
>>> import repro
>>> topo = repro.PaymentTopology.linear(3)
>>> session = repro.PaymentSession(topo, "timebounded", repro.Synchronous(1.0))
>>> outcome = session.run()
>>> outcome.bob_paid
True
"""

from ._version import __version__
from .clocks import DriftingClock, PERFECT_CLOCK, extremal_clock, random_clock
from .core.outcomes import PaymentOutcome
from .core.params import TimeoutParams, TimingAssumptions, compute_params
from .core.problem import (
    EVENTUALLY_TERMINATING_PAYMENT,
    PropertyId,
    TIME_BOUNDED_PAYMENT,
    WEAK_LIVENESS_PAYMENT,
)
from .core.session import PaymentEnv, PaymentSession
from .core.topology import PaymentTopology
from .ledger.asset import Amount, amount
from .net.timing import Asynchronous, PartialSynchrony, Synchronous
from .sim.kernel import Simulator

__all__ = [
    "Amount",
    "Asynchronous",
    "DriftingClock",
    "EVENTUALLY_TERMINATING_PAYMENT",
    "PERFECT_CLOCK",
    "PartialSynchrony",
    "PaymentEnv",
    "PaymentOutcome",
    "PaymentSession",
    "PaymentTopology",
    "PropertyId",
    "Simulator",
    "Synchronous",
    "TIME_BOUNDED_PAYMENT",
    "TimeoutParams",
    "TimingAssumptions",
    "WEAK_LIVENESS_PAYMENT",
    "amount",
    "compute_params",
    "extremal_clock",
    "random_clock",
    "__version__",
]
