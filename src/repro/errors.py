"""Exception hierarchy for the :mod:`repro` library.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been exhausted, or cancelling a foreign event.
    """


class SchedulingError(SimulationError):
    """An event could not be scheduled (e.g. negative delay)."""


class RecoveryError(SimulationError):
    """The crash–recovery machinery was misused or hit corruption.

    Examples: a fault plan naming an unknown crash point or victim, or
    a decision log whose byte stream is corrupt *before* its final
    (salvageable) record.
    """


class ClockError(ReproError):
    """A local clock was configured with invalid parameters.

    A clock rate must be strictly positive; a drift bound must lie in
    ``[0, 1)``.
    """


class NetworkError(ReproError):
    """Message routing failed (unknown recipient, closed network, ...)."""


class TimingModelError(NetworkError):
    """A timing model was configured with invalid parameters."""


class CryptoError(ReproError):
    """Signature creation or verification failed structurally."""


class SignatureError(CryptoError):
    """A signature did not verify (forgery attempt or corruption)."""


class LedgerError(ReproError):
    """An operation on a ledger violated its invariants."""


class InsufficientFunds(LedgerError):
    """A transfer or escrow deposit exceeded the available balance."""


class UnknownAccount(LedgerError):
    """An account id was not registered with the ledger."""


class EscrowStateError(LedgerError):
    """An escrow sub-account was driven through an illegal transition."""


class ContractError(LedgerError):
    """A smart-contract invocation was rejected."""


class BlockchainError(LedgerError):
    """A blockchain operation failed (bad block, unknown tx, ...)."""


class AutomatonError(ReproError):
    """A timed automaton was built or driven incorrectly."""


class ProtocolError(ReproError):
    """A protocol assembly is inconsistent (bad topology, parameters...)."""


class ParameterError(ProtocolError):
    """Timeout-parameter calculus received invalid inputs."""


class ConsensusError(ReproError):
    """The notary-committee consensus was misconfigured."""


class PropertyError(ReproError):
    """A property checker was applied to an unsuitable session."""


class DealError(ReproError):
    """A cross-chain deal matrix or deal protocol is malformed."""


class VerificationError(ReproError):
    """The bounded exhaustive explorer hit an internal inconsistency."""


class ExperimentError(ReproError):
    """An experiment harness was configured incorrectly."""


class ScenarioError(ExperimentError):
    """A scenario campaign referenced an unknown or invalid axis value."""


class PersistenceError(ExperimentError):
    """A persisted sweep directory is missing, malformed, or mismatched."""


class WorkloadError(ExperimentError):
    """A workload spec is invalid or a workload invariant was violated."""
