"""The message-passing network.

:class:`Network` connects registered :class:`~repro.sim.process.Process`
instances through a :class:`~repro.net.timing.TimingModel`, optionally
filtered by an :class:`~repro.net.adversary.Adversary`.  Sends are
authenticated (sender attribution is done by the network) and reliable
(no losses — the classic model), with one exception: a message
delivered to a *crashed* process (see :mod:`repro.sim.faults`) is
dropped, exactly as a fail-stopped machine loses its in-flight input.

Every send and delivery is recorded in the simulation trace, which is
what property checkers and experiment tables read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import NetworkError
from ..sim.events import EventPriority
from ..sim.kernel import Simulator
from ..sim.process import Process
from ..sim.trace import TraceKind
from .adversary import Adversary, NullAdversary
from .message import Envelope, MsgKind
from .timing import TimingModel

# Hoisted constants for the per-message hot path: enum member access
# goes through a descriptor, and the kernel converts non-``int``
# priorities on every call.
_SEND = TraceKind.SEND
_RECEIVE = TraceKind.RECEIVE
_DELIVERY = int(EventPriority.DELIVERY)


@dataclass
class NetworkStats:
    """Aggregate traffic counters (used by the scalability experiment)."""

    sent: int = 0
    delivered: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    total_latency: float = 0.0

    def mean_latency(self) -> float:
        """Average delivery latency over delivered messages."""
        return self.total_latency / self.delivered if self.delivered else 0.0


class Network:
    """Routes envelopes between named processes with model-driven delays.

    Parameters
    ----------
    sim:
        The simulator supplying time, scheduling, and traces.
    timing:
        Delivery-time policy (synchrony / partial synchrony / ...).
    adversary:
        Scheduling adversary; defaults to the non-interfering one.
    """

    def __init__(
        self,
        sim: Simulator,
        timing: TimingModel,
        adversary: Optional[Adversary] = None,
    ) -> None:
        self.sim = sim
        self.timing = timing
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.stats = NetworkStats()
        self._processes: Dict[str, Process] = {}
        self._rng = sim.rng.stream("network.delays")
        # Non-interfering adversaries (anything that inherits the base
        # ``propose_delay``) always answer ``None``; skipping the call
        # sheds a Python frame per send on the honest-network hot path.
        adv = self.adversary
        self._propose = (
            adv.propose_delay
            if type(adv).propose_delay is not Adversary.propose_delay
            else None
        )

    # -- arena lifecycle ---------------------------------------------------

    def reset(
        self,
        timing: Optional[TimingModel] = None,
        adversary: Optional[Adversary] = None,
    ) -> None:
        """Return the network to a freshly constructed state.

        The arena lifecycle: one network serves many trials.  Traffic
        counters, the process table, and the adversary fast path are
        rebuilt exactly as ``__init__`` would build them; ``timing``
        (when given) replaces the model.  Call this *after* resetting
        the owning simulator/view — the delay stream must come off the
        new RNG registry.
        """
        if timing is not None:
            self.timing = timing
        adv = adversary if adversary is not None else NullAdversary()
        self.adversary = adv
        self.stats = NetworkStats()
        self._processes.clear()
        self._rng = self.sim.rng.stream("network.delays")
        self._propose = (
            adv.propose_delay
            if type(adv).propose_delay is not Adversary.propose_delay
            else None
        )

    # -- registration -----------------------------------------------------

    def register(self, process: Process) -> Process:
        """Attach a process; its ``name`` becomes its network address."""
        if process.name in self._processes:
            raise NetworkError(f"duplicate process name: {process.name!r}")
        self._processes[process.name] = process
        return process

    def register_all(self, processes: List[Process]) -> None:
        """Register several processes at once."""
        for process in processes:
            self.register(process)

    def process(self, name: str) -> Process:
        """Look up a registered process by name."""
        try:
            return self._processes[name]
        except KeyError:
            raise NetworkError(f"unknown process: {name!r}") from None

    def names(self) -> List[str]:
        """Sorted registered process names."""
        return sorted(self._processes)

    # -- sending ------------------------------------------------------------

    def send(
        self,
        sender: Process,
        recipient: str,
        kind: MsgKind,
        payload: Any = None,
    ) -> Envelope:
        """Send a message; returns the envelope placed in flight.

        Sender attribution uses the *process object*, not a name string,
        so protocol code cannot spoof the envelope-level sender — the
        mechanical version of "Byzantine model with authentication".
        """
        if self._processes.get(sender.name) is not sender:
            raise NetworkError(
                f"process {sender.name!r} is not registered with this network"
            )
        if recipient not in self._processes:
            raise NetworkError(f"unknown recipient: {recipient!r}")
        sim = self.sim
        now = sim.now
        envelope = Envelope(
            sender=sender.name,
            recipient=recipient,
            kind=kind,
            payload=payload,
            send_time=now,
        )
        propose = self._propose
        proposal = propose(envelope, now) if propose is not None else None
        deliver_at = self.timing.delivery_time(envelope, now, self._rng, proposal)
        stats = self.stats
        stats.sent += 1
        kind_value = kind.value
        stats.by_kind[kind_value] = stats.by_kind.get(kind_value, 0) + 1
        # Reduced-mode recorders filter SEND out anyway; checking the
        # keep set here skips the record call (and its kwargs dict) on
        # the campaign hot path.  ``_keep`` is the recorder's own
        # filter set — read directly, like the kernel reads the
        # queue's ``_heap``.
        trace = sim.trace
        keep = trace._keep
        if keep is None or _SEND in keep:
            trace.record(
                now,
                _SEND,
                sender.name,
                to=recipient,
                msg_kind=kind_value,
                msg_id=envelope.msg_id,
                deliver_at=deliver_at,
            )
        sim.schedule_at(
            deliver_at,
            self._deliver,
            envelope,
            priority=_DELIVERY,
            label="deliver",
        )
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        sim = self.sim
        process = self._processes.get(envelope.recipient)
        now = sim.now
        latency = now - envelope.send_time
        stats = self.stats
        stats.delivered += 1
        stats.total_latency += latency
        trace = sim.trace
        keep = trace._keep
        if keep is None or _RECEIVE in keep:
            trace.record(
                now,
                _RECEIVE,
                envelope.recipient,
                frm=envelope.sender,
                msg_kind=envelope.kind.value,
                msg_id=envelope.msg_id,
                latency=latency,
            )
        # A crashed process is down: traffic addressed to it during the
        # downtime is lost with its volatile state (fail-stop model).
        if process is not None and not process.terminated and not process.crashed:
            process.handle_message(envelope)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({len(self._processes)} processes, {self.timing!r}, "
            f"adversary={self.adversary.describe()})"
        )


__all__ = ["Network", "NetworkStats"]
