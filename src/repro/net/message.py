"""Message envelopes.

All inter-participant communication travels as :class:`Envelope`
objects: an authenticated (sender-attributed) wrapper around a typed
payload.  The network layer guarantees *authentication* — an envelope's
``sender`` field is set by the network at send time from the registered
identity of the sending process, so a Byzantine participant can lie in
its payloads but cannot impersonate another participant at the envelope
level.  This realises the paper's "classic Byzantine model with
authentication".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class MsgKind(str, Enum):
    """Payload categories used across all protocols.

    The paper's three message kinds (certificate χ, value $, promises
    G/P) plus the control-plane kinds needed by the weak-liveness
    protocol, its transaction managers, and the consensus substrate.
    """

    GUARANTEE = "guarantee"  # G(d): escrow -> upstream customer
    PROMISE = "promise"  # P(a): escrow -> downstream customer
    MONEY = "money"  # $: value transfer notification
    CERTIFICATE = "certificate"  # χ: signed by Bob
    # Weak-liveness protocol control plane:
    ESCROWED = "escrowed"  # escrow -> TM: deposit locked
    COMMIT_REQUEST = "commit_request"  # Bob -> TM
    ABORT_REQUEST = "abort_request"  # any customer -> TM
    DECISION = "decision"  # TM -> all: commit/abort certificate
    # HTLC / deals:
    HASHLOCK_SETUP = "hashlock_setup"
    SECRET = "secret"
    CLAIM = "claim"
    # Consensus:
    CONSENSUS = "consensus"
    # Generic:
    CONTROL = "control"


_MSG_SEQ = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One message in flight.

    Attributes
    ----------
    sender / recipient:
        Participant names; ``sender`` is network-attributed (cannot be
        forged by the sending process).
    kind:
        Payload category; see :class:`MsgKind`.
    payload:
        Arbitrary structured content (promise objects, certificates,
        amounts, consensus records, ...).
    msg_id:
        Process-wide unique id, useful for trace correlation.
    send_time:
        Global time at which the message entered the network.
    """

    sender: str
    recipient: str
    kind: MsgKind
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_MSG_SEQ))
    send_time: float = 0.0

    def describe(self) -> str:
        """Short human-readable summary for traces and debugging."""
        return f"{self.kind.value}#{self.msg_id} {self.sender}->{self.recipient}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Envelope({self.describe()}, t={self.send_time:.6g})"


__all__ = ["Envelope", "MsgKind"]
