"""Timing models: synchrony, partial synchrony, asynchrony.

The paper's three theorems are parameterised exactly by these models:

* **Synchrony** (:class:`Synchronous`) — every message is delivered
  within a *known* bound Δ.  Theorem 1: the time-bounded protocol works.
* **Partial synchrony** (:class:`PartialSynchrony`) — there is a Global
  Stabilisation Time (GST), *unknown to the protocol*: messages sent at
  time ``t`` are delivered by ``max(t, GST) + Δ`` (Dwork–Lynch–
  Stockmeyer).  Theorem 2: no eventually-terminating protocol exists;
  Theorem 3: a weak-liveness protocol does.
* **Asynchrony** (:class:`Asynchronous`) — delays are finite but
  unbounded and unknown.

A timing model answers one question for the network: *when is this
message delivered?*  The model first lets the adversary propose a delay
and then **clamps** the proposal to whatever the model permits — this
cleanly realises "the adversary controls scheduling within the model's
constraint".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from math import log as _log
from typing import Optional

from ..errors import TimingModelError
from ..sim.rng import RngStream
from .message import Envelope


class TimingModel(ABC):
    """Delivery-time policy for a network."""

    #: Message-delay bound known to protocol participants, or ``None``
    #: when the model offers no usable bound (partial synchrony and
    #: asynchrony — protocols reading it anyway is exactly the unsound
    #: behaviour exposed by experiment E3).
    known_bound: Optional[float] = None

    @abstractmethod
    def sample_delay(self, envelope: Envelope, send_time: float, rng: RngStream) -> float:
        """Baseline delay when the adversary expresses no preference."""

    @abstractmethod
    def clamp(self, envelope: Envelope, send_time: float, proposed_delay: float) -> float:
        """Restrict a proposed delay to what the model permits."""

    def delivery_time(
        self,
        envelope: Envelope,
        send_time: float,
        rng: RngStream,
        proposed_delay: Optional[float] = None,
    ) -> float:
        """Final delivery instant for ``envelope`` sent at ``send_time``."""
        delay = (
            self.sample_delay(envelope, send_time, rng)
            if proposed_delay is None
            else proposed_delay
        )
        if delay < 0.0 or delay != delay:
            raise TimingModelError(f"invalid proposed delay {delay!r}")
        return send_time + self.clamp(envelope, send_time, delay)


class Synchronous(TimingModel):
    """Known delay bound Δ; optional known minimum delay.

    Parameters
    ----------
    delta:
        Upper bound on message delay, known to all participants.
    min_delay:
        Lower bound on message delay (default 0).
    jitter:
        When sampling baseline delays, draw uniformly from
        ``[min_delay, min_delay + jitter * (delta - min_delay)]``.
        ``jitter=1`` uses the full window; ``jitter=0`` always takes
        ``min_delay``.
    """

    def __init__(self, delta: float, min_delay: float = 0.0, jitter: float = 1.0) -> None:
        if delta <= 0:
            raise TimingModelError(f"delta must be > 0, got {delta!r}")
        if not (0.0 <= min_delay <= delta):
            raise TimingModelError(
                f"min_delay must be in [0, delta], got {min_delay!r}"
            )
        if not (0.0 <= jitter <= 1.0):
            raise TimingModelError(f"jitter must be in [0, 1], got {jitter!r}")
        self.delta = float(delta)
        self.min_delay = float(min_delay)
        self.jitter = float(jitter)
        self.known_bound = self.delta
        # Hoisted jitter window: ``hi`` and the span are pure functions
        # of the constructor arguments, so the per-message sample pays
        # one multiply-add instead of recomputing the window.  The span
        # equals ``hi - min_delay`` exactly, so the inline draw below
        # reproduces ``rng.uniform(min_delay, hi)`` bit for bit
        # (CPython's uniform is ``a + (b - a) * random()``).
        self._jitter_hi = self.min_delay + self.jitter * (self.delta - self.min_delay)
        self._jitter_span = self._jitter_hi - self.min_delay

    def sample_delay(self, envelope: Envelope, send_time: float, rng: RngStream) -> float:
        span = self._jitter_span
        if span > 0.0:
            return self.min_delay + span * rng.buffered_random()
        return self.min_delay

    def clamp(self, envelope: Envelope, send_time: float, proposed_delay: float) -> float:
        return min(max(proposed_delay, self.min_delay), self.delta)

    def delivery_time(
        self,
        envelope: Envelope,
        send_time: float,
        rng: RngStream,
        proposed_delay: Optional[float] = None,
    ) -> float:
        # Fused fast path for the common no-proposal send: the sampled
        # delay is ≥ min_delay by construction, so validation cannot
        # fire and only the upper clamp can bind (when ``hi`` rounds a
        # hair above delta) — two method frames shed per message, with
        # the same floats as the sample/validate/clamp base path.  The
        # jitter uniform comes off the stream's prefetch buffer (filled
        # in batches, consumed in draw order — the same values a scalar
        # ``rng.random()`` would return).
        if proposed_delay is None:
            span = self._jitter_span
            if span > 0.0:
                buf = rng._buffer
                delay = self.min_delay + span * (
                    buf.pop() if buf else rng.refill_uniforms()
                )
                if delay > self.delta:
                    delay = self.delta
                return send_time + delay
            return send_time + self.min_delay
        return TimingModel.delivery_time(self, envelope, send_time, rng, proposed_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Synchronous(delta={self.delta}, min_delay={self.min_delay})"


class PartialSynchrony(TimingModel):
    """DLS Global-Stabilisation-Time model.

    A message sent at ``t`` is delivered by ``max(t, GST) + Δ``.  Before
    GST the adversary may stretch delays arbitrarily up to that horizon;
    after GST the system behaves synchronously with bound Δ.  Crucially
    ``known_bound`` is ``None``: correct protocols must not rely on Δ
    or GST.

    Parameters
    ----------
    gst:
        Global stabilisation time.
    delta:
        Post-GST delay bound.
    pre_gst_scale:
        Mean of the baseline (non-adversarial) pre-GST delay
        distribution, expressed as a multiple of Δ.
    """

    def __init__(self, gst: float, delta: float, pre_gst_scale: float = 4.0) -> None:
        if delta <= 0:
            raise TimingModelError(f"delta must be > 0, got {delta!r}")
        if gst < 0:
            raise TimingModelError(f"gst must be >= 0, got {gst!r}")
        if pre_gst_scale < 0:
            raise TimingModelError(f"pre_gst_scale must be >= 0, got {pre_gst_scale!r}")
        self.gst = float(gst)
        self.delta = float(delta)
        self.pre_gst_scale = float(pre_gst_scale)
        self.known_bound = None
        # Hoisted exponential rate: same float the old per-call
        # ``1.0 / (pre_gst_scale * delta)`` produced, computed once.
        self._pre_gst_lambd = (
            1.0 / (self.pre_gst_scale * self.delta) if self.pre_gst_scale > 0 else 0.0
        )

    def deadline(self, send_time: float) -> float:
        """Latest permitted delivery instant for a ``send_time`` send."""
        return max(send_time, self.gst) + self.delta

    def sample_delay(self, envelope: Envelope, send_time: float, rng: RngStream) -> float:
        if send_time >= self.gst:
            # == rng.uniform(0.0, delta): CPython's uniform is
            # ``a + (b - a) * random()`` and ``0.0 + x`` is ``x`` for
            # every non-negative ``x``, so one multiply replaces the
            # method frame with the same draw and the same float (the
            # buffered draw serves that exact value batch-prefetched).
            return self.delta * rng.buffered_random()
        if self.pre_gst_scale > 0:
            # == rng.expovariate(lambd): ``-log(1 - random()) / lambd``.
            raw = -_log(1.0 - rng.buffered_random()) / self._pre_gst_lambd
        else:
            raw = 0.0
        return min(raw, self.deadline(send_time) - send_time)

    def clamp(self, envelope: Envelope, send_time: float, proposed_delay: float) -> float:
        latest = self.deadline(send_time) - send_time
        return min(proposed_delay, latest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartialSynchrony(gst={self.gst}, delta={self.delta})"


class Asynchronous(TimingModel):
    """Finite but unbounded delays; no information for protocols.

    ``max_delay`` exists purely to keep simulations finite — it is an
    artefact of simulation, not a bound available to protocols (and the
    adversary can use all of it).
    """

    def __init__(self, mean_delay: float = 1.0, max_delay: float = 1e6) -> None:
        if mean_delay <= 0:
            raise TimingModelError(f"mean_delay must be > 0, got {mean_delay!r}")
        if max_delay < mean_delay:
            raise TimingModelError("max_delay must be >= mean_delay")
        self.mean_delay = float(mean_delay)
        self.max_delay = float(max_delay)
        self.known_bound = None
        self._lambd = 1.0 / self.mean_delay

    def sample_delay(self, envelope: Envelope, send_time: float, rng: RngStream) -> float:
        # == rng.expovariate(1.0 / mean_delay), one frame cheaper; the
        # uniform comes off the stream's batch prefetch buffer.
        return min(-_log(1.0 - rng.buffered_random()) / self._lambd, self.max_delay)

    def clamp(self, envelope: Envelope, send_time: float, proposed_delay: float) -> float:
        return min(proposed_delay, self.max_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Asynchronous(mean={self.mean_delay})"


__all__ = ["Asynchronous", "PartialSynchrony", "Synchronous", "TimingModel"]
