"""Message-passing network substrate: envelopes, timing models,
scheduling adversaries, and the router."""

from .adversary import (
    Adversary,
    CertificateWithholdingAdversary,
    CompositeAdversary,
    EdgeDelayAdversary,
    FirstWindowAdversary,
    HOLD,
    KindDelayAdversary,
    NullAdversary,
    PredicateDelayAdversary,
    RecordingAdversary,
)
from .message import Envelope, MsgKind
from .network import Network, NetworkStats
from .timing import Asynchronous, PartialSynchrony, Synchronous, TimingModel

__all__ = [
    "Adversary",
    "Asynchronous",
    "CertificateWithholdingAdversary",
    "CompositeAdversary",
    "EdgeDelayAdversary",
    "Envelope",
    "FirstWindowAdversary",
    "HOLD",
    "KindDelayAdversary",
    "MsgKind",
    "Network",
    "NetworkStats",
    "NullAdversary",
    "PartialSynchrony",
    "PredicateDelayAdversary",
    "RecordingAdversary",
    "Synchronous",
    "TimingModel",
]
