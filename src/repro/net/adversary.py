"""Message-scheduling adversaries.

An adversary proposes per-message delays; the timing model clamps the
proposal to whatever it permits (see :mod:`repro.net.timing`).  This
separation mirrors the proof structure of Theorem 2: the adversary is
*maximally powerful within the timing model* — under partial synchrony
it can stretch any pre-GST message, but it can never violate the
post-GST bound.

The adversaries here are scheduling-only.  Byzantine *behaviour* (lying,
withholding, equivocating) lives in :mod:`repro.byzantine` because it is
a property of participants, not of the network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .message import Envelope, MsgKind

#: An adversary proposal: a delay in global-time units, or ``None`` to
#: let the timing model sample its baseline delay.
Proposal = Optional[float]

#: A very large delay; timing models clamp it to their actual maximum,
#: so proposing HOLD means "as late as the model allows".
HOLD = 1e18


class Adversary:
    """Base adversary: never interferes."""

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        """Return a proposed delay for ``envelope``, or ``None``."""
        return None

    def reset(self) -> None:
        """Discard per-run state, making the instance safe to reuse.

        Campaign trial assembly caches adversary instances per cell
        and resets them between runs; subclasses that accumulate state
        (attack logs, first-window counters) must clear it here.
        """

    def describe(self) -> str:
        """Human-readable name for experiment tables."""
        return type(self).__name__


class NullAdversary(Adversary):
    """Explicit no-op adversary (the honest network)."""


class PredicateDelayAdversary(Adversary):
    """Delay every message matching a predicate by a fixed proposal.

    Parameters
    ----------
    predicate:
        Selects the envelopes to attack.
    delay:
        Proposed delay for attacked envelopes (``HOLD`` = maximal).
    limit:
        Attack at most this many messages (``None`` = unlimited).
    """

    def __init__(
        self,
        predicate: Callable[[Envelope], bool],
        delay: float = HOLD,
        limit: Optional[int] = None,
    ) -> None:
        self.predicate = predicate
        self.delay = delay
        self.limit = limit
        self.attacked: List[int] = []

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        if self.limit is not None and len(self.attacked) >= self.limit:
            return None
        if self.predicate(envelope):
            self.attacked.append(envelope.msg_id)
            return self.delay
        return None

    def reset(self) -> None:
        self.attacked.clear()


class KindDelayAdversary(PredicateDelayAdversary):
    """Delay all messages of given kinds (e.g. every certificate χ)."""

    def __init__(
        self,
        kinds: Tuple[MsgKind, ...],
        delay: float = HOLD,
        limit: Optional[int] = None,
    ) -> None:
        self.kinds = tuple(kinds)
        super().__init__(lambda env: env.kind in self.kinds, delay=delay, limit=limit)

    def describe(self) -> str:
        names = ",".join(k.value for k in self.kinds)
        return f"KindDelayAdversary({names})"


class EdgeDelayAdversary(Adversary):
    """Delay all traffic on specific (sender, recipient) edges.

    Models a slow or attacked link, e.g. the Bob → e_{n-1} hop that the
    Theorem 2 adversary targets.
    """

    def __init__(self, edges: List[Tuple[str, str]], delay: float = HOLD) -> None:
        self.edges = set(edges)
        self.delay = delay

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        if (envelope.sender, envelope.recipient) in self.edges:
            return self.delay
        return None

    def describe(self) -> str:
        return f"EdgeDelayAdversary({sorted(self.edges)})"


class CertificateWithholdingAdversary(Adversary):
    """The Theorem 2 adversary.

    Holds every certificate (χ) message as long as the timing model
    allows, while leaving money and promise traffic untouched.  Under
    partial synchrony with GST beyond the protocol's timeout horizon
    this forces refund timeouts to fire *after* Bob irrevocably issued
    χ, breaking CS2 for any finite-timeout protocol; against a protocol
    with no timeout it prevents termination instead.  That disjunction
    is exactly the impossibility argument.
    """

    def __init__(self) -> None:
        self.held: List[int] = []

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        if envelope.kind is MsgKind.CERTIFICATE:
            self.held.append(envelope.msg_id)
            return HOLD
        return None

    def reset(self) -> None:
        self.held.clear()

    def describe(self) -> str:
        return "CertificateWithholdingAdversary"


class FirstWindowAdversary(Adversary):
    """Delay the first ``count`` messages of a kind past a boundary.

    Used to probe *boundary* behaviour: e.g. deliver χ exactly at, just
    before, or just after an escrow's timeout.
    """

    def __init__(self, kind: MsgKind, delay: float, count: int = 1) -> None:
        self.kind = kind
        self.delay = delay
        self.count = count
        self._seen = 0

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        if envelope.kind is self.kind and self._seen < self.count:
            self._seen += 1
            return self.delay
        return None

    def reset(self) -> None:
        self._seen = 0

    def describe(self) -> str:
        return f"FirstWindowAdversary({self.kind.value}, {self.delay})"


class CrashRestartAdversary(Adversary):
    """Crash–restart fault plan (the ``crash-restart`` campaign axis).

    Unlike the scheduling adversaries this one never touches a message:
    it *carries the fault plan* — which process to crash, at which named
    crash point (see :data:`repro.sim.faults.CRASH_POINTS`), and for how
    long — and the trial layer converts the plan into a live
    :class:`~repro.sim.faults.FaultInjector` attached to the session.
    It is stateless and safe to cache; the injector holds the per-run
    crash/recovery timestamps.
    """

    def __init__(self, victim: str, point: str, downtime: float) -> None:
        self.victim = victim
        self.point = point
        self.downtime = downtime

    def describe(self) -> str:
        return (
            f"CrashRestart({self.victim}@{self.point}, d={self.downtime})"
        )


class CompositeAdversary(Adversary):
    """Combine adversaries; the first non-``None`` proposal wins."""

    def __init__(self, *adversaries: Adversary) -> None:
        self.adversaries = list(adversaries)

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        for adversary in self.adversaries:
            proposal = adversary.propose_delay(envelope, send_time)
            if proposal is not None:
                return proposal
        return None

    def reset(self) -> None:
        for adversary in self.adversaries:
            adversary.reset()

    def describe(self) -> str:
        inner = ", ".join(a.describe() for a in self.adversaries)
        return f"Composite({inner})"


class RecordingAdversary(Adversary):
    """Wrap another adversary, logging (msg_id, proposal) decisions."""

    def __init__(self, inner: Adversary) -> None:
        self.inner = inner
        self.log: List[Tuple[int, Proposal]] = []

    def propose_delay(self, envelope: Envelope, send_time: float) -> Proposal:
        proposal = self.inner.propose_delay(envelope, send_time)
        self.log.append((envelope.msg_id, proposal))
        return proposal

    def reset(self) -> None:
        self.log.clear()
        self.inner.reset()

    def describe(self) -> str:
        return f"Recording({self.inner.describe()})"


__all__ = [
    "Adversary",
    "CertificateWithholdingAdversary",
    "CompositeAdversary",
    "CrashRestartAdversary",
    "EdgeDelayAdversary",
    "FirstWindowAdversary",
    "HOLD",
    "KindDelayAdversary",
    "NullAdversary",
    "PredicateDelayAdversary",
    "RecordingAdversary",
]
