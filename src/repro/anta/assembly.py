"""Composing automata, clocks, and a network into a runnable system."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clocks import DriftingClock, PERFECT_CLOCK
from ..errors import AutomatonError
from ..net.network import Network
from ..sim.kernel import Simulator
from .automaton import TimedAutomaton


class ANTANetwork:
    """An Asynchronous Network of Timed Automata, ready to run.

    Collects the automata of one protocol instance, starts them
    together, and offers whole-system queries (all terminated?, states
    snapshot) used by sessions and experiments.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.automata: Dict[str, TimedAutomaton] = {}

    def add(self, automaton: TimedAutomaton) -> TimedAutomaton:
        """Register an automaton with the assembly and the network."""
        if automaton.name in self.automata:
            raise AutomatonError(f"duplicate automaton {automaton.name!r}")
        self.automata[automaton.name] = automaton
        self.network.register(automaton)
        return automaton

    def start_all(self) -> None:
        """Enter every automaton's initial state (at the current time)."""
        for automaton in self.automata.values():
            automaton.start()

    def all_terminated(self) -> bool:
        """Whether every automaton reached a final state."""
        return all(a.terminated for a in self.automata.values())

    def states(self) -> Dict[str, Optional[str]]:
        """Snapshot of current state names."""
        return {name: a.state for name, a in self.automata.items()}

    def pending_automata(self) -> List[str]:
        """Names of automata that have not terminated."""
        return [name for name, a in self.automata.items() if not a.terminated]


__all__ = ["ANTANetwork"]
