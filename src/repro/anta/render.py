"""Textual rendering of automaton specifications.

Regenerates the content of the paper's Figure 2 from the executable
specs: every state, its flavour (white = input, grey = output), and its
outgoing transitions.  Used by ``examples/figure2_automata.py`` and by
documentation tests that pin the protocol structure.
"""

from __future__ import annotations

from typing import List

from .transitions import AutomatonSpec, StateKind, StateSpec


def render_state(state: StateSpec) -> List[str]:
    """Lines describing one state."""
    flavour = {
        StateKind.INPUT: "input (white)",
        StateKind.OUTPUT: "output (grey)",
        StateKind.FINAL: "final",
    }[state.kind]
    lines = [f"  [{state.name}]  ({flavour})"]
    for receive in state.receives:
        frm = receive.frm if isinstance(receive.frm, str) else "<dynamic>"
        label = receive.label or f"r({frm}, {receive.kind.value})"
        target = receive.target if isinstance(receive.target, str) else "<dynamic>"
        lines.append(f"    {label:40s} -> {target}")
    for timeout in state.timeouts:
        label = timeout.label or "now >= deadline"
        target = timeout.target if isinstance(timeout.target, str) else "<dynamic>"
        lines.append(f"    {label:40s} -> {target}")
    if state.kind is StateKind.OUTPUT:
        lines.append("    (computes, sends, then moves on)")
    return lines


def render_spec(spec: AutomatonSpec) -> str:
    """Multi-line description of a whole automaton."""
    lines = [f"{spec.name}  (initial: {spec.initial})"]
    for name in spec.states:
        lines.extend(render_state(spec.states[name]))
    return "\n".join(lines)


def render_specs(specs: List[AutomatonSpec], title: str = "") -> str:
    """Render several automata, Figure-2 style."""
    parts = [title] if title else []
    parts.extend(render_spec(spec) for spec in specs)
    return "\n\n".join(parts)


__all__ = ["render_spec", "render_specs", "render_state"]
