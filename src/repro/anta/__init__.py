"""Asynchronous Networks of Timed Automata (ANTA) — the specification
formalism of the paper's Section 4, executable."""

from .assembly import ANTANetwork
from .automaton import TimedAutomaton
from .render import render_spec, render_specs
from .transitions import (
    AutomatonSpec,
    EmitFn,
    ReceiveSpec,
    SendSpec,
    StateKind,
    StateSpec,
    TimeoutSpec,
    resolve_name,
)

__all__ = [
    "ANTANetwork",
    "AutomatonSpec",
    "EmitFn",
    "ReceiveSpec",
    "SendSpec",
    "StateKind",
    "StateSpec",
    "TimedAutomaton",
    "TimeoutSpec",
    "render_spec",
    "render_specs",
    "resolve_name",
]
