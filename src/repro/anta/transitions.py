"""Declarative state/transition specifications for timed automata.

The ANTA formalism (paper §4) has two state flavours:

* **output (grey) states** — the automaton spends a bounded amount of
  time computing, then *sends* messages and moves on;
* **input (white) states** — the automaton waits, possibly forever,
  until an outgoing transition becomes enabled: either a receive
  ``r(id, m)`` or a clock condition ``now >= deadline``.

Specs are plain data so an automaton's structure can be rendered (we
regenerate the paper's Figure 2 textually from these objects) and
explored exhaustively by :mod:`repro.verification`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AutomatonError
from ..net.message import Envelope, MsgKind

# Resolvers let specs reference "the upstream escrow" etc. symbolically:
# either a literal string or a function of the automaton instance.
NameResolver = Union[str, Callable[["TimedAutomaton"], str]]  # noqa: F821
TargetResolver = Union[str, Callable[["TimedAutomaton"], str]]  # noqa: F821


def resolve_name(resolver: NameResolver, automaton: Any) -> str:
    """Evaluate a symbolic participant reference."""
    return resolver if isinstance(resolver, str) else resolver(automaton)


class StateKind(str, Enum):
    """ANTA state flavours."""

    INPUT = "input"  # white: wait for receive/timeout transitions
    OUTPUT = "output"  # grey: compute (bounded), send, move on
    FINAL = "final"  # terminal


@dataclass
class ReceiveSpec:
    """An input transition ``r(frm, kind)`` with optional guard.

    Attributes
    ----------
    frm:
        Expected sender (symbolic).
    kind:
        Expected message kind.
    guard:
        Extra predicate over ``(automaton, envelope)``; payload
        validation (signature checks, amount checks) goes here.
    action:
        Side-effecting callback ``(automaton, envelope)`` run when the
        transition fires (clock assignments like ``x := now``, ledger
        operations, storing payloads).
    target:
        Next state (symbolic).
    label:
        Rendering label, e.g. ``"r(e0, $)"``.
    """

    frm: NameResolver
    kind: MsgKind
    target: TargetResolver
    guard: Optional[Callable[[Any, Envelope], bool]] = None
    action: Optional[Callable[[Any, Envelope], None]] = None
    label: str = ""

    def matches(self, automaton: Any, envelope: Envelope) -> bool:
        """Whether this transition is enabled by ``envelope``."""
        if envelope.kind is not self.kind:
            return False
        if envelope.sender != resolve_name(self.frm, automaton):
            return False
        if self.guard is not None and not self.guard(automaton, envelope):
            return False
        return True


@dataclass
class TimeoutSpec:
    """A clock transition ``now >= deadline`` in *local* time.

    Attributes
    ----------
    deadline:
        Function of the automaton returning the local-clock deadline
        (e.g. ``lambda a: a.vars["u"] + a.config["a_i"]``).
    action:
        Side-effecting callback ``(automaton,)``.
    target:
        Next state (symbolic).
    """

    deadline: Callable[[Any], float]
    target: TargetResolver
    action: Optional[Callable[[Any], None]] = None
    label: str = ""


@dataclass
class SendSpec:
    """One message emitted from an output state."""

    to: NameResolver
    kind: MsgKind
    payload: Any = None


#: Output-state behaviour: given the automaton, produce the messages to
#: send and the next state.  Separating "compute what to send" from the
#: framework keeps output states pure and easily testable.
EmitFn = Callable[[Any], Tuple[List[SendSpec], str]]


@dataclass
class StateSpec:
    """One automaton state.

    ``decision=True`` marks an output state as *decision-grade*: its
    emission is an irrevocable protocol decision (a commit, a refund),
    so a durable automaton write-ahead-logs it — and reports the
    ``pre-decision`` / ``post-sign-pre-send`` / ``post-send`` crash
    points around it (see :mod:`repro.sim.faults`).  The flag is inert
    unless the automaton has a decision log attached.
    """

    name: str
    kind: StateKind
    receives: List[ReceiveSpec] = field(default_factory=list)
    timeouts: List[TimeoutSpec] = field(default_factory=list)
    emit: Optional[EmitFn] = None
    on_enter: Optional[Callable[[Any], None]] = None
    decision: bool = False

    def __post_init__(self) -> None:
        if self.kind is StateKind.OUTPUT and self.emit is None:
            raise AutomatonError(f"output state {self.name!r} needs an emit function")
        if self.kind is not StateKind.OUTPUT and self.emit is not None:
            raise AutomatonError(f"non-output state {self.name!r} cannot emit")
        if self.kind is not StateKind.INPUT and (self.receives or self.timeouts):
            raise AutomatonError(
                f"only input states may own transitions ({self.name!r})"
            )
        if self.decision and self.kind is not StateKind.OUTPUT:
            raise AutomatonError(
                f"only output states can be decision-grade ({self.name!r})"
            )


@dataclass
class AutomatonSpec:
    """A complete automaton: named states plus the initial state."""

    name: str
    initial: str
    states: Dict[str, StateSpec] = field(default_factory=dict)

    def add(self, state: StateSpec) -> StateSpec:
        """Register a state (rejects duplicates)."""
        if state.name in self.states:
            raise AutomatonError(f"duplicate state {state.name!r} in {self.name!r}")
        self.states[state.name] = state
        return state

    def validate(self) -> None:
        """Check structural sanity: initial exists, targets resolvable.

        Symbolic (callable) targets are checked at runtime instead.
        """
        if self.initial not in self.states:
            raise AutomatonError(
                f"initial state {self.initial!r} missing from {self.name!r}"
            )
        for state in self.states.values():
            targets: List[TargetResolver] = [r.target for r in state.receives]
            targets += [t.target for t in state.timeouts]
            for target in targets:
                if isinstance(target, str) and target not in self.states:
                    raise AutomatonError(
                        f"state {state.name!r} targets unknown state {target!r}"
                    )

    def input_states(self) -> List[StateSpec]:
        return [s for s in self.states.values() if s.kind is StateKind.INPUT]

    def output_states(self) -> List[StateSpec]:
        return [s for s in self.states.values() if s.kind is StateKind.OUTPUT]


__all__ = [
    "AutomatonSpec",
    "EmitFn",
    "NameResolver",
    "ReceiveSpec",
    "SendSpec",
    "StateKind",
    "StateSpec",
    "TargetResolver",
    "TimeoutSpec",
    "resolve_name",
]
