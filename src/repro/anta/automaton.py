"""Execution engine for ANTA timed automata.

A :class:`TimedAutomaton` runs an :class:`~repro.anta.transitions.AutomatonSpec`
on the simulation kernel:

* its ``now`` property reads the automaton's **local drifting clock**;
* input states arm timeout timers by converting local deadlines to
  global instants through the clock;
* messages that arrive while no matching transition is enabled are
  **buffered** and re-examined whenever the automaton enters an input
  state — the standard asynchronous-network semantics (a send is never
  lost just because the receiver was busy computing);
* output states take a bounded *processing delay* before emitting, as
  in the formalism ("an automaton spends a bounded amount of time
  calculating in each grey state").

Determinism: transition specs are evaluated in declaration order, and
the buffer is FIFO, so runs are reproducible.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clocks import DriftingClock, PERFECT_CLOCK
from ..errors import AutomatonError
from ..net.message import Envelope, MsgKind
from ..net.network import Network
from ..sim.decision_log import DECISION, SENT
from ..sim.events import EventPriority
from ..sim.kernel import Simulator
from ..sim.process import Process
from ..sim.trace import TraceKind
from .transitions import (
    AutomatonSpec,
    ReceiveSpec,
    SendSpec,
    StateKind,
    StateSpec,
    TimeoutSpec,
    resolve_name,
)


class TimedAutomaton(Process):
    """One participant of an ANTA network.

    Parameters
    ----------
    sim, name:
        Process identity.
    spec:
        The automaton's structure.
    network:
        Where sends go.
    clock:
        Local drifting clock (defaults to a perfect clock).
    processing_bound:
        Real-time upper bound ε on grey-state computation; actual delays
        are sampled uniformly from ``[processing_floor, processing_bound]``.
    config:
        Free-form per-instance parameters (timeout windows, amounts,
        neighbour names) available to spec callbacks as ``self.config``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spec: AutomatonSpec,
        network: Network,
        clock: DriftingClock = PERFECT_CLOCK,
        processing_bound: float = 0.0,
        processing_floor: float = 0.0,
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(sim, name)
        spec.validate()
        if processing_bound < 0 or processing_floor < 0:
            raise AutomatonError("processing delays must be >= 0")
        if processing_floor > processing_bound:
            raise AutomatonError("processing_floor must be <= processing_bound")
        self.spec = spec
        self.network = network
        self.clock = clock
        self.processing_bound = float(processing_bound)
        self.processing_floor = float(processing_floor)
        self.config: Dict[str, Any] = dict(config or {})
        self.vars: Dict[str, Any] = {}
        self.state: Optional[str] = None
        self._buffer: List[Envelope] = []
        self._rng = sim.rng.stream(f"automaton.{name}")
        #: Observers notified on every state entry (used by tests/explorer).
        self.on_state_change: List[Callable[[str], None]] = []

    # -- local time -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current reading of this automaton's *local* clock."""
        return self.clock.local_time(self.sim.now)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Enter the initial state."""
        self._enter(self.spec.initial)

    def current_state(self) -> StateSpec:
        if self.state is None:
            raise AutomatonError(f"{self.name}: automaton not started")
        return self.spec.states[self.state]

    # -- state machine ---------------------------------------------------------

    def _enter(self, state_name: str) -> None:
        if self.terminated:
            return
        if state_name not in self.spec.states:
            raise AutomatonError(f"{self.name}: unknown state {state_name!r}")
        self.state = state_name
        state = self.spec.states[state_name]
        self.sim.trace.record(
            self.sim.now,
            TraceKind.STATE,
            self.name,
            state=state_name,
            state_kind=state.kind.value,
            local_time=self.now,
        )
        if state.on_enter is not None:
            state.on_enter(self)
        for observer in self.on_state_change:
            observer(state_name)
        if state.kind is StateKind.FINAL:
            self.terminate(reason=f"final state {state_name}")
            return
        if state.kind is StateKind.OUTPUT:
            delay = self._sample_processing_delay()
            self.sim.schedule(
                delay,
                self._run_output,
                state_name,
                priority=EventPriority.INTERNAL,
                label=f"{self.name}.compute.{state_name}",
            )
            return
        # INPUT state: a durable automaton checkpoints at every input
        # state — the quiescent points of the run — before waiting.
        if self.decision_log is not None:
            self.checkpoint()
        # Drain buffered messages first, then arm timeouts.
        if self._try_consume_buffered():
            return
        self._arm_timeouts(state)

    def _sample_processing_delay(self) -> float:
        if self.processing_bound <= self.processing_floor:
            return self.processing_floor
        return self._rng.uniform(self.processing_floor, self.processing_bound)

    def _run_output(self, state_name: str) -> None:
        if self.terminated or self.state != state_name:
            return
        state = self.spec.states[state_name]
        assert state.emit is not None  # guaranteed by StateSpec validation
        # Decision-grade output on a durable automaton: write-ahead
        # protocol with the three declared crash points around it.
        log = self.decision_log if state.decision else None
        if log is not None:
            self.reach_crash_point("pre-decision")
            if self.crashed:
                return
        sends, next_state = state.emit(self)
        if log is not None:
            log.append(
                DECISION,
                state=state_name,
                next_state=next_state,
                sends=[
                    (resolve_name(send.to, self), send.kind, send.payload)
                    for send in sends
                ],
            )
            log.sync()
            self.reach_crash_point("post-sign-pre-send")
            if self.crashed:
                return
        for send in sends:
            self.send(send.to, send.kind, send.payload)
        if log is not None:
            log.append(SENT, state=state_name)
            log.sync()
            self.reach_crash_point("post-send")
            if self.crashed:
                return
        self._enter(next_state)

    # -- sending ---------------------------------------------------------------

    def send(self, to: Any, kind: MsgKind, payload: Any = None) -> Envelope:
        """Send a message to a (symbolically named) participant."""
        return self.network.send(self, resolve_name(to, self), kind, payload)

    # -- receiving ---------------------------------------------------------------

    def handle_message(self, envelope: Envelope) -> None:
        if self.terminated:
            return
        state = self.current_state()
        if state.kind is StateKind.INPUT:
            transition = self._find_receive(state, envelope)
            if transition is not None:
                self._fire_receive(transition, envelope)
                return
        self._buffer.append(envelope)

    def _find_receive(
        self, state: StateSpec, envelope: Envelope
    ) -> Optional[ReceiveSpec]:
        for transition in state.receives:
            if transition.matches(self, envelope):
                return transition
        return None

    def _try_consume_buffered(self) -> bool:
        """Consume the first buffered message enabling a transition."""
        state = self.current_state()
        for index, envelope in enumerate(self._buffer):
            transition = self._find_receive(state, envelope)
            if transition is not None:
                del self._buffer[index]
                self._fire_receive(transition, envelope)
                return True
        return False

    def _fire_receive(self, transition: ReceiveSpec, envelope: Envelope) -> None:
        self._disarm_timeouts()
        if transition.action is not None:
            transition.action(self, envelope)
        self._enter(resolve_name(transition.target, self))

    # -- timeouts -----------------------------------------------------------------

    def _timeout_timer_id(self, index: int) -> str:
        return f"state-timeout-{index}"

    def _arm_timeouts(self, state: StateSpec) -> None:
        for index, timeout in enumerate(state.timeouts):
            local_deadline = timeout.deadline(self)
            global_deadline = self.clock.global_time(local_deadline)
            # A deadline already in the past is enabled immediately; fire
            # at the current instant (still via the event queue so the
            # TIMER priority ordering vs. same-time deliveries holds).
            fire_at = max(global_deadline, self.sim.now)
            self.set_timer_at(self._timeout_timer_id(index), fire_at)

    def _disarm_timeouts(self) -> None:
        state = self.current_state()
        for index in range(len(state.timeouts)):
            self.cancel_timer(self._timeout_timer_id(index))

    def on_timer(self, timer_id: str) -> None:
        if not timer_id.startswith("state-timeout-"):
            return
        state = self.current_state()
        index = int(timer_id.rsplit("-", 1)[1])
        if index >= len(state.timeouts):  # stale timer from a previous state
            return
        timeout = state.timeouts[index]
        # Re-check the clock condition defensively (guards against clock
        # rounding at conversion boundaries).
        if self.now < timeout.deadline(self) - 1e-12:
            # Not actually due yet; re-arm at the corrected instant.
            self.set_timer_at(
                timer_id, self.clock.global_time(timeout.deadline(self))
            )
            return
        self._disarm_timeouts()
        self.sim.trace.record(
            self.sim.now,
            TraceKind.TIMEOUT,
            self.name,
            state=self.state,
            label=timeout.label,
            local_time=self.now,
        )
        if timeout.action is not None:
            timeout.action(self)
        self._enter(resolve_name(timeout.target, self))

    # -- crash / recovery --------------------------------------------------

    def _durable_state(self) -> Dict[str, Any]:
        """Checkpoint payload: control state plus protocol variables.

        The variables carry the timer base points (``u``, lock ids, …),
        so re-entering the checkpointed state after recovery re-derives
        every timeout deadline from durable data alone.
        """
        return {"state": self.state, "vars": dict(self.vars)}

    def restore(self) -> None:
        """Replay the decision log, then rejoin the automaton's run.

        Volatile state (message buffer, in-memory variables) is wiped
        and rebuilt from the durable records: the newest checkpoint
        restores ``state``/``vars``; a decision record after it is an
        irrevocable commitment — its messages are retransmitted unless
        the ``sent`` marker also survived — and the automaton resumes
        in the decision's successor state.  With no checkpoint at all
        the automaton restarts from its initial state.
        """
        log = self.decision_log
        self._buffer.clear()
        self.cancel_all_timers()
        if log is None:  # pragma: no cover - recover() without durability
            self.vars = {}
            self._enter(self.spec.initial)
            return
        _, ckpt = log.last_checkpoint()
        tail = log.since_checkpoint()
        self.vars = dict(ckpt["vars"]) if ckpt is not None else {}
        decision = next(
            (record for record in tail if record["kind"] == DECISION), None
        )
        if decision is not None:
            sent = any(record["kind"] == SENT for record in tail)
            if not sent:
                for to, kind, payload in decision["sends"]:
                    self.send(to, kind, payload)
            self._enter(decision["next_state"])
            return
        if ckpt is not None:
            self._enter(ckpt["state"])
            return
        self._enter(self.spec.initial)

    # -- introspection -------------------------------------------------------------

    def buffered_count(self) -> int:
        """Messages received but not yet consumed."""
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimedAutomaton({self.name!r}, state={self.state!r})"


__all__ = ["TimedAutomaton"]
