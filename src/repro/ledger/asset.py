"""Assets and amounts.

Amounts are integers of *minor units* (cents, satoshi, ...) tagged with
an asset code.  Integer arithmetic keeps conservation checks exact —
float rounding would make "no money created or destroyed" undecidable.
Cross-asset arithmetic is a type error: the paper treats exchange rates
as orthogonal (§2), so the library never converts between assets; a
connector simply *receives* one amount and *sends* another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..errors import LedgerError


@dataclass(frozen=True, order=False)
class Amount:
    """An exact quantity of one asset.

    Attributes
    ----------
    asset:
        Asset code, e.g. ``"USD"``, ``"BTC"``, ``"X0"``.
    units:
        Quantity in minor units; must be non-negative for all ledger
        operations (amounts are magnitudes, direction comes from the
        operation).
    """

    asset: str
    units: int

    def __post_init__(self) -> None:
        if not self.asset:
            raise LedgerError("asset code must be non-empty")
        if not isinstance(self.units, int) or isinstance(self.units, bool):
            raise LedgerError(f"amount units must be int, got {type(self.units).__name__}")

    # -- arithmetic (same-asset only) -------------------------------------

    def _check_same_asset(self, other: "Amount") -> None:
        if self.asset != other.asset:
            raise LedgerError(
                f"cannot combine amounts of {self.asset!r} and {other.asset!r}"
            )

    def __add__(self, other: "Amount") -> "Amount":
        self._check_same_asset(other)
        return Amount(self.asset, self.units + other.units)

    def __sub__(self, other: "Amount") -> "Amount":
        self._check_same_asset(other)
        return Amount(self.asset, self.units - other.units)

    def __le__(self, other: "Amount") -> bool:
        self._check_same_asset(other)
        return self.units <= other.units

    def __lt__(self, other: "Amount") -> bool:
        self._check_same_asset(other)
        return self.units < other.units

    def __ge__(self, other: "Amount") -> bool:
        self._check_same_asset(other)
        return self.units >= other.units

    def __gt__(self, other: "Amount") -> bool:
        self._check_same_asset(other)
        return self.units > other.units

    def scaled(self, numerator: int, denominator: int) -> "Amount":
        """Integer-scaled amount (floor division), for commission math."""
        if denominator <= 0:
            raise LedgerError("denominator must be positive")
        return Amount(self.asset, (self.units * numerator) // denominator)

    @property
    def is_zero(self) -> bool:
        return self.units == 0

    @property
    def is_positive(self) -> bool:
        return self.units > 0

    def signing_fields(self) -> Dict[str, Any]:
        return {"type": "amount", "asset": self.asset, "units": self.units}

    def __repr__(self) -> str:
        return f"{self.units} {self.asset}"


def amount(asset: str, units: int) -> Amount:
    """Ergonomic constructor."""
    return Amount(asset, units)


__all__ = ["Amount", "amount"]
