"""The ledger: one escrow's book of accounts and escrow locks.

Each escrow ``e_i`` (bank or blockchain) maintains a :class:`Ledger`.
Value can be transferred *only between customers of the same escrow*
(paper §2) — mechanically, between accounts of the same ledger.  The
escrow's conditional custody ("place value in escrow, then complete or
return it") is an :class:`EscrowLock` state machine::

    HELD ──release──▶ RELEASED   (value to the beneficiary)
      └────refund───▶ REFUNDED   (value back to the depositor)

Escrow custody is *reservation-backed*: a deposit reserves the value on
the depositor's account (:meth:`~repro.ledger.account.Account.reserve`),
a release settles the reservation and credits the beneficiary, and a
refund releases the reservation back to the depositor.  Because settle
and release both fail when the reserved column cannot cover them, a
lock can never pay out twice — double-spending a reserve is
structurally impossible, not merely audited after the fact.

Escrow security (property ES) is the conservation invariant audited by
:meth:`Ledger.audit`: minted value always equals account balances plus
held locks, *and* every held lock is exactly backed by its depositor's
reservation — the escrow can never end up out of pocket, no matter what
sequence of operations the participants attempt.

For invariant harnesses (the workload stress tests), a ledger accepts
an ``observer`` callback invoked after every mutating operation, so
conservation can be checked at every ledger step rather than only at
the end of a run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..errors import EscrowStateError, LedgerError, UnknownAccount
from ..sim.kernel import Simulator
from ..sim.trace import TraceKind
from .account import Account
from .asset import Amount


class LockState(str, Enum):
    """Life-cycle of escrowed value."""

    HELD = "held"
    RELEASED = "released"
    REFUNDED = "refunded"


_LOCK_SEQ = itertools.count()


@dataclass
class EscrowLock:
    """Value held by the escrow pending a completion decision."""

    lock_id: str
    depositor: str
    beneficiary: str
    amount: Amount
    state: LockState = LockState.HELD
    created_at: float = 0.0
    resolved_at: Optional[float] = None

    @property
    def held(self) -> bool:
        return self.state is LockState.HELD


class Ledger:
    """Book of accounts for one escrow.

    Parameters
    ----------
    name:
        The owning escrow's name (used in traces).
    sim:
        Optional simulator for trace integration; ledgers also work
        standalone (unit tests, deals substrate).
    """

    def __init__(self, name: str, sim: Optional[Simulator] = None) -> None:
        self.name = name
        self.sim = sim
        self._accounts: Dict[str, Account] = {}
        self._locks: Dict[str, EscrowLock] = {}
        self._minted: Dict[str, int] = {}
        #: Optional ``observer(ledger, op)`` called after every mutating
        #: operation (mint / transfer / escrow transition) — the hook
        #: invariant harnesses use to audit conservation at every step.
        self.observer: Optional[Callable[["Ledger", str], None]] = None

    # -- arena lifecycle ----------------------------------------------------

    def reset(self, sim: Optional[Simulator] = None) -> None:
        """Return the ledger to a freshly constructed state (same name).

        The arena lifecycle: one ledger shell serves many trials.
        Accounts, locks, mint totals, and the observer hook are all
        dropped; ``sim`` (when given) rebinds trace integration —
        callers reusing the ledger on an in-place-reset simulator can
        omit it.
        """
        if sim is not None:
            self.sim = sim
        self._accounts.clear()
        self._locks.clear()
        self._minted.clear()
        self.observer = None

    # -- time / trace helpers ---------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _trace(self, kind: TraceKind, **data: object) -> None:
        sim = self.sim
        if sim is None:
            return
        # Reduced-mode recorders filter every ledger kind; checking the
        # keep set first skips the record call on the campaign hot path.
        trace = sim.trace
        keep = trace._keep
        if keep is None or kind in keep:
            trace.record(sim.now, kind, self.name, **data)

    def _notify(self, op: str) -> None:
        observer = self.observer
        if observer is not None:
            observer(self, op)

    # -- accounts -----------------------------------------------------------

    def open_account(self, owner: str) -> Account:
        """Create (or return) the account for ``owner``."""
        existing = self._accounts.get(owner)
        if existing is not None:
            return existing
        account = Account(owner)
        self._accounts[owner] = account
        return account

    def account(self, owner: str) -> Account:
        """Look up an existing account."""
        try:
            return self._accounts[owner]
        except KeyError:
            raise UnknownAccount(f"no account {owner!r} at {self.name!r}") from None

    def has_account(self, owner: str) -> bool:
        return owner in self._accounts

    def balance(self, owner: str, asset: str) -> Amount:
        """Balance shorthand."""
        return self.account(owner).balance(asset)

    def mint(self, owner: str, amt: Amount) -> None:
        """Create new value in ``owner``'s account (scenario setup only)."""
        if amt.units < 0:
            raise LedgerError("cannot mint a negative amount")
        self.open_account(owner).credit(amt)
        self._minted[amt.asset] = self._minted.get(amt.asset, 0) + amt.units
        self._notify("mint")

    # -- direct transfers ----------------------------------------------------

    def transfer(self, frm: str, to: str, amt: Amount, reason: str = "") -> None:
        """Move value between two accounts of this ledger atomically."""
        src = self.account(frm)
        dst = self.account(to)
        src.debit(amt)  # raises InsufficientFunds before any credit
        dst.credit(amt)
        self._trace(
            TraceKind.TRANSFER,
            frm=frm,
            to=to,
            asset=amt.asset,
            units=amt.units,
            reason=reason,
        )
        self._notify("transfer")

    # -- escrow locks ----------------------------------------------------------

    def escrow_deposit(
        self,
        depositor: str,
        beneficiary: str,
        amt: Amount,
        lock_id: Optional[str] = None,
    ) -> EscrowLock:
        """Move value from ``depositor`` into escrow custody.

        The value is *reserved* on the depositor's account (a bounded
        balance: the reserve fails exactly when a plain debit would),
        so the held lock is backed by the reservation until released or
        refunded.  Returns the lock; raises :class:`InsufficientFunds`
        (account unchanged) if the depositor cannot cover ``amt``.
        """
        if not amt.is_positive:
            raise LedgerError(f"escrow deposit must be positive, got {amt!r}")
        self.account(beneficiary)  # beneficiary must exist up front
        self.account(depositor).reserve(amt)
        lid = lock_id if lock_id is not None else f"{self.name}/lock{next(_LOCK_SEQ)}"
        if lid in self._locks:
            # Restore funds before failing: deposits are atomic.
            self.account(depositor).release(amt)
            raise EscrowStateError(f"duplicate lock id {lid!r}")
        lock = EscrowLock(
            lock_id=lid,
            depositor=depositor,
            beneficiary=beneficiary,
            amount=amt,
            created_at=self._now(),
        )
        self._locks[lid] = lock
        self._trace(
            TraceKind.ESCROW_DEPOSIT,
            lock_id=lid,
            depositor=depositor,
            beneficiary=beneficiary,
            asset=amt.asset,
            units=amt.units,
        )
        self._notify("escrow_deposit")
        return lock

    def lock(self, lock_id: str) -> EscrowLock:
        """Look up a lock by id."""
        try:
            return self._locks[lock_id]
        except KeyError:
            raise EscrowStateError(f"unknown lock {lock_id!r} at {self.name!r}") from None

    def escrow_release(self, lock_id: str) -> EscrowLock:
        """Complete the transfer: locked value goes to the beneficiary."""
        lock = self.lock(lock_id)
        if not lock.held:
            raise EscrowStateError(
                f"lock {lock_id!r} already {lock.state.value}; cannot release"
            )
        # Settle the depositor's reservation first: if this lock's
        # backing was somehow already spent, the settle raises and the
        # lock stays HELD — the double-spend never reaches the books.
        self.account(lock.depositor).settle(lock.amount)
        lock.state = LockState.RELEASED
        lock.resolved_at = self._now()
        self.account(lock.beneficiary).credit(lock.amount)
        self._trace(
            TraceKind.ESCROW_RELEASE,
            lock_id=lock_id,
            beneficiary=lock.beneficiary,
            asset=lock.amount.asset,
            units=lock.amount.units,
        )
        self._notify("escrow_release")
        return lock

    def escrow_refund(self, lock_id: str) -> EscrowLock:
        """Return the locked value to the depositor."""
        lock = self.lock(lock_id)
        if not lock.held:
            raise EscrowStateError(
                f"lock {lock_id!r} already {lock.state.value}; cannot refund"
            )
        # Releasing the reservation both restores the depositor's
        # available balance and retires the lock's backing atomically.
        self.account(lock.depositor).release(lock.amount)
        lock.state = LockState.REFUNDED
        lock.resolved_at = self._now()
        self._trace(
            TraceKind.ESCROW_REFUND,
            lock_id=lock_id,
            depositor=lock.depositor,
            asset=lock.amount.asset,
            units=lock.amount.units,
        )
        self._notify("escrow_refund")
        return lock

    def locks(self, state: Optional[LockState] = None) -> List[EscrowLock]:
        """All locks, optionally filtered by state, in creation order."""
        out = list(self._locks.values())
        if state is not None:
            out = [l for l in out if l.state is state]
        return out

    # -- auditing ----------------------------------------------------------------

    def total_in_accounts(self, asset: str) -> int:
        """Sum of account balances for ``asset``."""
        return sum(acct.balance(asset).units for acct in self._accounts.values())

    def total_in_locks(self, asset: str) -> int:
        """Sum of HELD lock values for ``asset``."""
        return sum(
            l.amount.units
            for l in self._locks.values()
            if l.held and l.amount.asset == asset
        )

    def total_reserved(self, asset: str) -> int:
        """Sum of reserved balances for ``asset`` across all accounts."""
        return sum(
            acct.reserved(asset).units for acct in self._accounts.values()
        )

    def reserve_backing_ok(self, asset: str) -> bool:
        """Whether every account's reservation equals its held locks.

        Stronger than the aggregate ``total_reserved == total_in_locks``:
        a reserve leaked from one depositor to another would cancel out
        in the totals but not per account.
        """
        backing: Dict[str, int] = {}
        for lock in self._locks.values():
            if lock.held and lock.amount.asset == asset:
                backing[lock.depositor] = (
                    backing.get(lock.depositor, 0) + lock.amount.units
                )
        return all(
            acct.reserved(asset).units == backing.get(owner, 0)
            for owner, acct in self._accounts.items()
        )

    def audit(self) -> Dict[str, bool]:
        """Conservation check per asset: minted == accounts + held locks,
        and every held lock exactly backed by its depositor's reserve.

        This is escrow security (ES) in executable form: if it holds at
        the end of a run, the escrow has not lost (or fabricated) value
        — and no reservation was double-spent along the way.
        """
        assets = set(self._minted)
        for acct in self._accounts.values():
            assets.update(acct.snapshot())
            assets.update(acct.reserved_snapshot())
        for lock in self._locks.values():
            assets.add(lock.amount.asset)
        return {
            asset: (
                self._minted.get(asset, 0)
                == self.total_in_accounts(asset) + self.total_in_locks(asset)
                and self.reserve_backing_ok(asset)
            )
            for asset in sorted(assets)
        }

    def audit_ok(self) -> bool:
        """Whether conservation holds for every asset."""
        return all(self.audit().values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ledger({self.name!r}, accounts={sorted(self._accounts)})"


__all__ = ["EscrowLock", "Ledger", "LockState"]
