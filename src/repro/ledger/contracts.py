"""Standard contracts: transaction manager, HTLC, certified broadcast.

Three contracts cover the paper's on-chain needs:

* :class:`TransactionManagerContract` — the Definition 2 transaction
  manager as a smart contract.  Certificate consistency (CC) holds *by
  construction*: the decision field is written once, and block execution
  is serial.
* :class:`HTLCContract` — hashed timelock escrow used by the baseline
  protocols (Interledger atomic mode; Herlihy timelock commit).
* :class:`CertifiedBroadcastContract` — an append-only publication log
  modelling the "certified blockchain" of Herlihy–Liskov–Shrira: anyone
  can publish a record and later prove publication (the chain's receipt
  acts as the certificate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from ..errors import ContractError
from ..crypto.certificates import Decision
from ..crypto.hashlock import HashLock, Preimage
from .asset import Amount
from .blockchain import CallContext, Contract


class TransactionManagerContract(Contract):
    """On-chain transaction manager for the weak-liveness protocol.

    State machine::

        OPEN ──(all escrows reported + commit requested)──▶ COMMIT
        OPEN ──(abort requested)───────────────────────────▶ ABORT

    The first satisfied rule wins; afterwards the decision is frozen.
    ``escrowed`` reports are only accepted from the registered escrows;
    ``request_commit`` only from the registered beneficiaries (Bob on a
    path, every sink on a payment DAG — ``beneficiary`` accepts one
    name or a sequence) — matching the paper, where the commit
    certificate is what *Alice* uses as proof that the recipients have
    been paid, so each of them must have asked.

    Methods
    -------
    ``escrowed(escrow)``, ``request_commit()``, ``request_abort()``,
    ``status()``.
    """

    def __init__(
        self,
        address: str,
        payment_id: str,
        escrows: List[str],
        beneficiary: Union[str, Sequence[str]],
    ) -> None:
        super().__init__(address)
        if not escrows:
            raise ContractError("transaction manager needs at least one escrow")
        self.payment_id = payment_id
        self.escrows = list(escrows)
        self.beneficiaries = (
            [beneficiary] if isinstance(beneficiary, str) else list(beneficiary)
        )
        self.reported: Set[str] = set()
        self.commit_requests: Set[str] = set()
        self.decision: Optional[Decision] = None
        self.decided_at_height: Optional[int] = None

    def call(self, ctx: CallContext, method: str, args: Dict[str, Any]) -> Any:
        if method == "escrowed":
            return self._escrowed(ctx)
        if method == "request_commit":
            return self._request_commit(ctx)
        if method == "request_abort":
            return self._request_abort(ctx)
        if method == "status":
            return self._status()
        raise ContractError(f"{self.address}: unknown method {method!r}")

    def _escrowed(self, ctx: CallContext) -> Dict[str, Any]:
        if ctx.sender not in self.escrows:
            raise ContractError(f"{ctx.sender!r} is not a registered escrow")
        self.reported.add(ctx.sender)
        self._maybe_decide(ctx)
        return self._status()

    def _request_commit(self, ctx: CallContext) -> Dict[str, Any]:
        if ctx.sender not in self.beneficiaries:
            raise ContractError(
                f"only {self.beneficiaries!r} may request commit, "
                f"not {ctx.sender!r}"
            )
        self.commit_requests.add(ctx.sender)
        self._maybe_decide(ctx)
        return self._status()

    def _request_abort(self, ctx: CallContext) -> Dict[str, Any]:
        if self.decision is None:
            self.decision = Decision.ABORT
            self.decided_at_height = ctx.block_height
        return self._status()

    def _maybe_decide(self, ctx: CallContext) -> None:
        if self.decision is None and len(self.commit_requests) == len(
            self.beneficiaries
        ) and len(self.reported) == len(self.escrows):
            self.decision = Decision.COMMIT
            self.decided_at_height = ctx.block_height

    def _status(self) -> Dict[str, Any]:
        return {
            "payment_id": self.payment_id,
            "decision": self.decision.value if self.decision else None,
            "reported": sorted(self.reported),
            "commit_requested": len(self.commit_requests)
            == len(self.beneficiaries),
        }


@dataclass
class HTLCLock:
    """One hashed-timelock escrow entry."""

    lock_id: str
    depositor: str
    beneficiary: str
    amount: Amount
    hashlock: HashLock
    deadline: float
    state: str = "held"  # held | claimed | refunded


class HTLCContract(Contract):
    """Hashed timelock escrow over the chain's ledger.

    Methods
    -------
    ``lock(lock_id, beneficiary, amount, hashlock, deadline)``
        Debits the sender and holds the value under a hash + deadline.
    ``claim(lock_id, preimage)``
        Beneficiary presents the preimage strictly before the deadline.
    ``refund(lock_id)``
        After the deadline, value returns to the depositor.
    """

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.locks: Dict[str, HTLCLock] = {}

    def call(self, ctx: CallContext, method: str, args: Dict[str, Any]) -> Any:
        if method == "lock":
            return self._lock(ctx, args)
        if method == "claim":
            return self._claim(ctx, args)
        if method == "refund":
            return self._refund(ctx, args)
        if method == "status":
            lock = self._get(args["lock_id"])
            return {"state": lock.state, "deadline": lock.deadline}
        raise ContractError(f"{self.address}: unknown method {method!r}")

    def _get(self, lock_id: str) -> HTLCLock:
        try:
            return self.locks[lock_id]
        except KeyError:
            raise ContractError(f"unknown HTLC lock {lock_id!r}") from None

    def _lock(self, ctx: CallContext, args: Dict[str, Any]) -> str:
        lock_id: str = args["lock_id"]
        if lock_id in self.locks:
            raise ContractError(f"duplicate HTLC lock {lock_id!r}")
        amount: Amount = args["amount"]
        hashlock: HashLock = args["hashlock"]
        deadline: float = float(args["deadline"])
        beneficiary: str = args["beneficiary"]
        ledger = ctx.chain.ledger
        ledger.open_account(beneficiary)
        ledger.escrow_deposit(
            depositor=ctx.sender,
            beneficiary=beneficiary,
            amt=amount,
            lock_id=f"{self.address}/{lock_id}",
        )
        self.locks[lock_id] = HTLCLock(
            lock_id=lock_id,
            depositor=ctx.sender,
            beneficiary=beneficiary,
            amount=amount,
            hashlock=hashlock,
            deadline=deadline,
        )
        return lock_id

    def _claim(self, ctx: CallContext, args: Dict[str, Any]) -> str:
        lock = self._get(args["lock_id"])
        preimage: Preimage = args["preimage"]
        if lock.state != "held":
            raise ContractError(f"lock {lock.lock_id!r} already {lock.state}")
        if ctx.sender != lock.beneficiary:
            raise ContractError("only the beneficiary may claim")
        if ctx.block_time >= lock.deadline:
            raise ContractError("claim after deadline")
        if not lock.hashlock.matches(preimage):
            raise ContractError("preimage does not match hash-lock")
        lock.state = "claimed"
        ctx.chain.ledger.escrow_release(f"{self.address}/{lock.lock_id}")
        return "claimed"

    def _refund(self, ctx: CallContext, args: Dict[str, Any]) -> str:
        lock = self._get(args["lock_id"])
        if lock.state != "held":
            raise ContractError(f"lock {lock.lock_id!r} already {lock.state}")
        if ctx.block_time < lock.deadline:
            raise ContractError("refund before deadline")
        lock.state = "refunded"
        ctx.chain.ledger.escrow_refund(f"{self.address}/{lock.lock_id}")
        return "refunded"


@dataclass(frozen=True)
class PublicationRecord:
    """Proof that a payload was published at a given height."""

    index: int
    height: int
    publisher: str
    payload: Any


class CertifiedBroadcastContract(Contract):
    """Append-only publication log with retrievable records.

    The "certified blockchain" abstraction of Herlihy–Liskov–Shrira: a
    chain whose entries come with transferable proofs of publication.
    Here the proof is the :class:`PublicationRecord` (backed by the
    chain's deterministic execution); readers can fetch the whole log.
    """

    def __init__(self, address: str) -> None:
        super().__init__(address)
        self.log: List[PublicationRecord] = []

    def call(self, ctx: CallContext, method: str, args: Dict[str, Any]) -> Any:
        if method == "publish":
            record = PublicationRecord(
                index=len(self.log),
                height=ctx.block_height,
                publisher=ctx.sender,
                payload=args.get("payload"),
            )
            self.log.append(record)
            return record
        if method == "read":
            since = int(args.get("since", 0))
            return list(self.log[since:])
        raise ContractError(f"{self.address}: unknown method {method!r}")


__all__ = [
    "CertifiedBroadcastContract",
    "HTLCContract",
    "HTLCLock",
    "PublicationRecord",
    "TransactionManagerContract",
]
