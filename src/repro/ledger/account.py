"""Accounts: named multi-asset balances with a non-negativity invariant.

Each account keeps two per-asset columns:

* the **available** balance — value the owner can spend right now
  (this is what :meth:`Account.balance` and :meth:`Account.snapshot`
  report, so every pre-existing reader sees exactly the spendable
  funds it always saw);
* the **reserved** balance — value committed to an escrow lock or a
  pending admission but not yet settled away.

``reserve`` moves available → reserved, ``release`` moves it back, and
``settle`` consumes reserved value for good (the counterpart credit
happens at the beneficiary).  All three raise and leave the account
unchanged when the source column cannot cover the amount — which is
what makes double-spending a reservation structurally impossible: the
second settle/release of the same reserve finds the reserved column
short and fails loudly.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import InsufficientFunds, LedgerError
from .asset import Amount


class Account:
    """A named balance holder inside one ledger.

    Balances are per-asset and may never go negative; attempting to
    withdraw more than the balance raises :class:`InsufficientFunds`
    and leaves the account unchanged.
    """

    def __init__(self, owner: str) -> None:
        if not owner:
            raise LedgerError("account owner must be non-empty")
        self.owner = owner
        self._balances: Dict[str, int] = {}
        self._reserved: Dict[str, int] = {}

    def balance(self, asset: str) -> Amount:
        """Current *available* balance in ``asset`` (zero if never touched)."""
        return Amount(asset, self._balances.get(asset, 0))

    def reserved(self, asset: str) -> Amount:
        """Value currently reserved (escrowed / admission-held) in ``asset``."""
        return Amount(asset, self._reserved.get(asset, 0))

    def assets(self) -> List[str]:
        """Sorted list of assets with non-zero available balance."""
        return sorted(a for a, u in self._balances.items() if u != 0)

    def credit(self, amt: Amount) -> None:
        """Add ``amt`` to the available balance."""
        if amt.units < 0:
            raise LedgerError(f"cannot credit negative amount {amt!r}")
        self._balances[amt.asset] = self._balances.get(amt.asset, 0) + amt.units

    def debit(self, amt: Amount) -> None:
        """Remove ``amt`` from the available balance.

        Raises
        ------
        InsufficientFunds
            If the balance would go negative.  The account is unchanged.
        """
        if amt.units < 0:
            raise LedgerError(f"cannot debit negative amount {amt!r}")
        held = self._balances.get(amt.asset, 0)
        if held < amt.units:
            raise InsufficientFunds(
                f"{self.owner!r} holds {held} {amt.asset}, cannot debit {amt.units}"
            )
        self._balances[amt.asset] = held - amt.units

    # -- reservations -------------------------------------------------------

    def reserve(self, amt: Amount) -> None:
        """Move ``amt`` from available to reserved.

        Raises
        ------
        InsufficientFunds
            If the available balance cannot cover ``amt``; the account
            is unchanged.
        """
        if amt.units < 0:
            raise LedgerError(f"cannot reserve negative amount {amt!r}")
        held = self._balances.get(amt.asset, 0)
        if held < amt.units:
            raise InsufficientFunds(
                f"{self.owner!r} holds {held} {amt.asset}, "
                f"cannot reserve {amt.units}"
            )
        self._balances[amt.asset] = held - amt.units
        self._reserved[amt.asset] = self._reserved.get(amt.asset, 0) + amt.units

    def release(self, amt: Amount) -> None:
        """Move ``amt`` from reserved back to available.

        Raises
        ------
        InsufficientFunds
            If less than ``amt`` is reserved; the account is unchanged.
        """
        if amt.units < 0:
            raise LedgerError(f"cannot release negative amount {amt!r}")
        held = self._reserved.get(amt.asset, 0)
        if held < amt.units:
            raise InsufficientFunds(
                f"{self.owner!r} has {held} {amt.asset} reserved, "
                f"cannot release {amt.units}"
            )
        self._reserved[amt.asset] = held - amt.units
        self._balances[amt.asset] = self._balances.get(amt.asset, 0) + amt.units

    def settle(self, amt: Amount) -> None:
        """Consume ``amt`` of reserved value for good.

        The counterpart credit (to a beneficiary, or to another ledger's
        books) is the caller's responsibility; this method only retires
        the reservation.

        Raises
        ------
        InsufficientFunds
            If less than ``amt`` is reserved; the account is unchanged.
        """
        if amt.units < 0:
            raise LedgerError(f"cannot settle negative amount {amt!r}")
        held = self._reserved.get(amt.asset, 0)
        if held < amt.units:
            raise InsufficientFunds(
                f"{self.owner!r} has {held} {amt.asset} reserved, "
                f"cannot settle {amt.units}"
            )
        self._reserved[amt.asset] = held - amt.units

    def can_pay(self, amt: Amount) -> bool:
        """Whether a debit (or reserve) of ``amt`` would succeed."""
        return self._balances.get(amt.asset, 0) >= amt.units

    def snapshot(self) -> Dict[str, int]:
        """Copy of the available-balance table (asset -> units)."""
        return dict(self._balances)

    def reserved_snapshot(self) -> Dict[str, int]:
        """Copy of the reserved-balance table (asset -> units)."""
        return {a: u for a, u in self._reserved.items() if u != 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if any(self._reserved.values()):
            return (
                f"Account({self.owner!r}, {self._balances}, "
                f"reserved={self._reserved})"
            )
        return f"Account({self.owner!r}, {self._balances})"


__all__ = ["Account"]
