"""Accounts: named multi-asset balances with a non-negativity invariant."""

from __future__ import annotations

from typing import Dict, List

from ..errors import InsufficientFunds, LedgerError
from .asset import Amount


class Account:
    """A named balance holder inside one ledger.

    Balances are per-asset and may never go negative; attempting to
    withdraw more than the balance raises :class:`InsufficientFunds`
    and leaves the account unchanged.
    """

    def __init__(self, owner: str) -> None:
        if not owner:
            raise LedgerError("account owner must be non-empty")
        self.owner = owner
        self._balances: Dict[str, int] = {}

    def balance(self, asset: str) -> Amount:
        """Current balance in ``asset`` (zero if never touched)."""
        return Amount(asset, self._balances.get(asset, 0))

    def assets(self) -> List[str]:
        """Sorted list of assets with non-zero balance."""
        return sorted(a for a, u in self._balances.items() if u != 0)

    def credit(self, amt: Amount) -> None:
        """Add ``amt`` to the balance."""
        if amt.units < 0:
            raise LedgerError(f"cannot credit negative amount {amt!r}")
        self._balances[amt.asset] = self._balances.get(amt.asset, 0) + amt.units

    def debit(self, amt: Amount) -> None:
        """Remove ``amt`` from the balance.

        Raises
        ------
        InsufficientFunds
            If the balance would go negative.  The account is unchanged.
        """
        if amt.units < 0:
            raise LedgerError(f"cannot debit negative amount {amt!r}")
        held = self._balances.get(amt.asset, 0)
        if held < amt.units:
            raise InsufficientFunds(
                f"{self.owner!r} holds {held} {amt.asset}, cannot debit {amt.units}"
            )
        self._balances[amt.asset] = held - amt.units

    def can_pay(self, amt: Amount) -> bool:
        """Whether a debit of ``amt`` would succeed."""
        return self._balances.get(amt.asset, 0) >= amt.units

    def snapshot(self) -> Dict[str, int]:
        """Copy of the balance table (asset -> units)."""
        return dict(self._balances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Account({self.owner!r}, {self._balances})"


__all__ = ["Account"]
