"""Value substrate: assets, accounts, escrow ledgers, blockchains,
and standard contracts."""

from .account import Account
from .asset import Amount, amount
from .blockchain import Block, CallContext, Contract, Receipt, SimpleChain, Transaction
from .contracts import (
    CertifiedBroadcastContract,
    HTLCContract,
    HTLCLock,
    PublicationRecord,
    TransactionManagerContract,
)
from .ledger import EscrowLock, Ledger, LockState

__all__ = [
    "Account",
    "Amount",
    "Block",
    "CallContext",
    "CertifiedBroadcastContract",
    "Contract",
    "EscrowLock",
    "HTLCContract",
    "HTLCLock",
    "Ledger",
    "LockState",
    "PublicationRecord",
    "Receipt",
    "SimpleChain",
    "Transaction",
    "TransactionManagerContract",
    "amount",
]
