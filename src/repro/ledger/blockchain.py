"""A minimal blockchain: blocks, transactions, contracts, finality.

The weak-liveness protocol's transaction manager "can be a smart
contract running on a permissionless blockchain shared by every
customer" (paper §3).  :class:`SimpleChain` supplies that substrate:

* blocks are produced every ``block_interval`` time units;
* submitted transactions enter the next block (bounded mempool delay);
* a transaction's effects are *final* once ``confirmations`` further
  blocks exist; observers are notified at finality, not at inclusion —
  modelling the reorg-safety waiting period of real chains;
* contracts are deterministic state machines executed in block order,
  with access to the chain's own :class:`~repro.ledger.ledger.Ledger`.

The chain is also a :class:`~repro.sim.process.Process`, so remote
participants can interact with it through the network (submission via
``CONTROL`` envelopes), while co-located participants may call
:meth:`submit` directly — both paths serialise through the mempool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import BlockchainError, ContractError
from ..net.message import Envelope, MsgKind
from ..sim.kernel import Simulator
from ..sim.process import Process
from ..sim.trace import TraceKind
from .ledger import Ledger

_TX_SEQ = itertools.count()

# Hoisted enum member: ``TraceKind.STATE`` is read once per produced
# block, and enum member access goes through a descriptor — measurable
# at campaign block-tick rates.
_STATE = TraceKind.STATE


@dataclass(frozen=True)
class Transaction:
    """A contract invocation waiting for inclusion."""

    tx_id: int
    sender: str
    contract: str
    method: str
    args: Dict[str, Any]
    submitted_at: float


@dataclass(frozen=True)
class Block:
    """An ordered batch of executed transactions."""

    height: int
    produced_at: float
    txs: Tuple[Transaction, ...]


@dataclass
class Receipt:
    """Execution outcome of one transaction."""

    tx: Transaction
    block_height: int
    executed_at: float
    final_at: float
    ok: bool
    result: Any = None
    error: str = ""


@dataclass(frozen=True)
class CallContext:
    """Environment visible to a contract during execution."""

    chain: "SimpleChain"
    sender: str
    block_height: int
    block_time: float


class Contract:
    """Base class for on-chain state machines.

    Subclasses implement :meth:`call`; any :class:`ContractError` raised
    marks the transaction failed without aborting the block.
    """

    def __init__(self, address: str) -> None:
        if not address:
            raise ContractError("contract address must be non-empty")
        self.address = address

    def call(self, ctx: CallContext, method: str, args: Dict[str, Any]) -> Any:
        raise ContractError(f"{self.address}: unknown method {method!r}")


class SimpleChain(Process):
    """A block-producing process hosting contracts and a ledger.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Chain name (network address and trace actor).
    block_interval:
        Global-time spacing between blocks.
    confirmations:
        Number of follow-up blocks required for finality.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        block_interval: float = 1.0,
        confirmations: int = 1,
    ) -> None:
        super().__init__(sim, name)
        if block_interval <= 0:
            raise BlockchainError("block_interval must be > 0")
        if confirmations < 0:
            raise BlockchainError("confirmations must be >= 0")
        self.block_interval = float(block_interval)
        self.confirmations = int(confirmations)
        self.ledger = Ledger(name=f"{name}.ledger", sim=sim)
        self.blocks: List[Block] = []
        self.receipts: Dict[int, Receipt] = {}
        self._mempool: List[Transaction] = []
        self._contracts: Dict[str, Contract] = {}
        self._finality_subs: List[Callable[[Receipt], None]] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin producing blocks."""
        if not self._started:
            self._started = True
            self.set_timer("produce", self.block_interval)

    def on_timer(self, timer_id: str) -> None:
        if timer_id == "produce":
            self._produce_block()
            self.set_timer("produce", self.block_interval)

    # -- contracts ------------------------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        """Install a contract at its address."""
        if contract.address in self._contracts:
            raise BlockchainError(f"address {contract.address!r} already in use")
        self._contracts[contract.address] = contract
        return contract

    def contract(self, address: str) -> Contract:
        """Look up a deployed contract."""
        try:
            return self._contracts[address]
        except KeyError:
            raise BlockchainError(f"no contract at {address!r}") from None

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        sender: str,
        contract: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> Transaction:
        """Queue a transaction for the next block (direct local access)."""
        if contract not in self._contracts:
            raise BlockchainError(f"no contract at {contract!r}")
        tx = Transaction(
            tx_id=next(_TX_SEQ),
            sender=sender,
            contract=contract,
            method=method,
            args=dict(args or {}),
            submitted_at=self.sim.now,
        )
        self._mempool.append(tx)
        return tx

    def handle_message(self, message: Envelope) -> None:
        """Remote submission: CONTROL envelopes carrying tx descriptors."""
        if message.kind is not MsgKind.CONTROL:
            return
        payload = message.payload
        if not isinstance(payload, dict) or payload.get("op") != "submit_tx":
            return
        self.submit(
            sender=message.sender,
            contract=payload["contract"],
            method=payload["method"],
            args=payload.get("args", {}),
        )

    # -- finality notifications -----------------------------------------------------

    def subscribe_finality(self, callback: Callable[[Receipt], None]) -> None:
        """Invoke ``callback(receipt)`` when a transaction finalises."""
        self._finality_subs.append(callback)

    # -- block production ----------------------------------------------------------

    def _produce_block(self) -> Block:
        sim = self.sim
        now = sim.now
        height = len(self.blocks)
        mempool = self._mempool
        if mempool:
            txs = tuple(mempool)
            mempool.clear()
        else:
            # Most blocks in a campaign are empty ticks: skip the
            # mempool copy and the per-tx machinery below entirely.
            txs = ()
        block = Block(height=height, produced_at=now, txs=txs)
        self.blocks.append(block)
        # Block ticks dominate campaign event counts; reduced-mode
        # recorders filter STATE anyway, so checking the keep set here
        # skips the record call (and its kwargs dict) per empty tick.
        trace = sim.trace
        keep = trace._keep
        if keep is None or _STATE in keep:
            trace.record(
                now,
                _STATE,
                self.name,
                state="block",
                height=height,
                txs=len(txs),
            )
        if txs:
            final_at = now + self.confirmations * self.block_interval
            ctx_base = dict(block_height=height, block_time=block.produced_at)
            for tx in txs:
                receipt = self._execute(tx, block, final_at, ctx_base)
                self.receipts[tx.tx_id] = receipt
                for callback in list(self._finality_subs):
                    sim.schedule_at(
                        final_at,
                        callback,
                        receipt,
                        label=f"{self.name}.finality.tx{tx.tx_id}",
                    )
        return block

    def _execute(
        self,
        tx: Transaction,
        block: Block,
        final_at: float,
        ctx_base: Dict[str, Any],
    ) -> Receipt:
        ctx = CallContext(chain=self, sender=tx.sender, **ctx_base)
        try:
            result = self._contracts[tx.contract].call(ctx, tx.method, tx.args)
            return Receipt(
                tx=tx,
                block_height=block.height,
                executed_at=block.produced_at,
                final_at=final_at,
                ok=True,
                result=result,
            )
        except ContractError as exc:
            return Receipt(
                tx=tx,
                block_height=block.height,
                executed_at=block.produced_at,
                final_at=final_at,
                ok=False,
                error=str(exc),
            )

    # -- queries -------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of produced blocks."""
        return len(self.blocks)

    def finalized_height(self) -> int:
        """Highest block height whose contents are final."""
        return max(-1, self.height - 1 - self.confirmations)

    def time_to_finality(self) -> float:
        """Worst-case delay from submission to finality.

        mempool wait (≤ 1 interval) + ``confirmations`` intervals.
        """
        return (1 + self.confirmations) * self.block_interval


__all__ = [
    "Block",
    "CallContext",
    "Contract",
    "Receipt",
    "SimpleChain",
    "Transaction",
]
