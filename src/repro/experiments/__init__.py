"""The reproduction's evaluation: one module per experiment (table or
figure), plus the harness and renderer."""

from typing import Callable, Dict

from . import (
    e1_synchrony,
    e2_drift,
    e3_impossibility,
    e4_weak,
    e5_notaries,
    e6_deals,
    e7_scalability,
    e8_exploration,
    e9_margin,
)
from .harness import ExperimentResult, fraction, mean, seeds_for
from .tables import render_table

#: Experiment registry: id -> run(quick, seed) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_synchrony.run,
    "E2": e2_drift.run,
    "E3": e3_impossibility.run,
    "E4": e4_weak.run,
    "E5": e5_notaries.run,
    "E6": e6_deals.run,
    "E7": e7_scalability.run,
    "E8": e8_exploration.run,
    "E9": e9_margin.run,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "fraction",
    "mean",
    "render_table",
    "seeds_for",
]
