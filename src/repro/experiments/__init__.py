"""The reproduction's evaluation: one module per experiment (table or
figure), plus the harness and renderer.

Every experiment module is a triple on top of :mod:`repro.runtime`:

* ``build_sweep(quick, seed) -> SweepSpec`` — the declarative trial grid;
* ``trial(spec) -> dict`` — one pure Monte-Carlo trial (runs anywhere,
  including worker processes);
* ``aggregate(SweepResult) -> ExperimentResult`` — the reduction to the
  paper table.

``run(quick, seed, executor)`` composes the three; pass an
:class:`~repro.runtime.Executor`, an integer job count, or nothing (the
``REPRO_JOBS`` environment variable then decides).
"""

from typing import Callable, Dict

from . import (
    e1_synchrony,
    e2_drift,
    e3_impossibility,
    e4_weak,
    e5_notaries,
    e6_deals,
    e7_scalability,
    e8_exploration,
    e9_margin,
)
from .harness import (
    ExperimentResult,
    build_timing,
    fraction,
    mean,
    payment_session,
    seeds_for,
)
from .tables import render_table

#: id -> experiment module; the single source the registries derive from.
_MODULES = {
    "E1": e1_synchrony,
    "E2": e2_drift,
    "E3": e3_impossibility,
    "E4": e4_weak,
    "E5": e5_notaries,
    "E6": e6_deals,
    "E7": e7_scalability,
    "E8": e8_exploration,
    "E9": e9_margin,
}

#: Experiment registry: id -> run(quick, seed, executor) -> ExperimentResult.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    exp_id: module.run for exp_id, module in _MODULES.items()
}

#: Sweep-spec builders, for callers that want to schedule trials
#: themselves (benchmarks, external executors): id -> build_sweep.
SWEEPS: Dict[str, Callable[..., object]] = {
    exp_id: module.build_sweep for exp_id, module in _MODULES.items()
}

#: id -> aggregate(SweepResult) -> ExperimentResult, matching SWEEPS.
AGGREGATORS: Dict[str, Callable[..., ExperimentResult]] = {
    exp_id: module.aggregate for exp_id, module in _MODULES.items()
}


def experiment_doc(exp_id: str) -> str:
    """The experiment's one-line description (module docstring head)."""
    import sys

    fn = EXPERIMENTS[exp_id]
    module = sys.modules.get(fn.__module__)
    doc = (module.__doc__ or "").strip() if module else ""
    return doc.splitlines()[0].strip() if doc else fn.__module__


__all__ = [
    "AGGREGATORS",
    "EXPERIMENTS",
    "SWEEPS",
    "ExperimentResult",
    "build_timing",
    "experiment_doc",
    "fraction",
    "mean",
    "payment_session",
    "render_table",
    "seeds_for",
]
