"""E7 — simulator scalability (the "systems" figure).

Wall-clock time, event and message counts of the time-bounded protocol
as the path length grows.  The paper is a theory brief with no
performance section; this figure documents the reproduction substrate
itself: cost is linear-ish in path length (each hop adds a constant
number of messages: G, $, P forward; χ, $ backward).
"""

from __future__ import annotations

import time

from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.timing import Synchronous
from .harness import ExperimentResult


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E7",
        title="simulation cost vs path length",
        claim=(
            "messages grow linearly in the number of escrows (5n + "
            "constant); wall time stays in milliseconds at n=64."
        ),
        columns=["n", "messages", "events", "sim_end_time", "wall_seconds"],
    )
    sizes = [2, 4, 8, 16, 32] if quick else [2, 4, 8, 16, 32, 64, 128]
    for n in sizes:
        topo = PaymentTopology.linear(n, payment_id=f"e7-{n}")
        session = PaymentSession(
            topo, "timebounded", Synchronous(1.0), seed=seed, rho=0.005
        )
        t0 = time.perf_counter()
        outcome = session.run()
        wall = time.perf_counter() - t0
        if not outcome.bob_paid:
            raise AssertionError(f"E7 run n={n} unexpectedly failed")
        result.add_row(
            n=n,
            messages=outcome.messages_sent,
            events=outcome.events_executed,
            sim_end_time=outcome.end_time,
            wall_seconds=wall,
        )
    return result


__all__ = ["run"]
