"""E7 — simulator scalability (the "systems" figure).

Wall-clock time, event and message counts of the time-bounded protocol
as the path length grows.  The paper is a theory brief with no
performance section; this figure documents the reproduction substrate
itself: cost is linear-ish in path length (each hop adds a constant
number of messages: G, $, P forward; χ, $ backward).

The table reports the simulator's *deterministic* cost metrics only
(messages, events, simulated end time), so it stays byte-identical
across ``--jobs`` values like every other table.  Wall-clock cost is
covered by the CLI's per-experiment footer and by the
``benchmarks/`` suite (``bench_e7_scalability.py``, ``bench_kernel.py``);
per-trial walls are also on each :class:`TrialRecord` for callers
running the sweep themselves.
"""

from __future__ import annotations

from typing import Any, Dict

from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, payment_session


def trial(spec) -> Dict[str, Any]:
    outcome = payment_session(spec).run()
    if not outcome.bob_paid:
        raise AssertionError(
            f"E7 run n={spec.opt('n')} unexpectedly failed"
        )
    return {
        "messages": outcome.messages_sent,
        "events": outcome.events_executed,
        "sim_end_time": outcome.end_time,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    sizes = [2, 4, 8, 16, 32] if quick else [2, 4, 8, 16, 32, 64, 128]
    return SweepSpec.grid(
        "E7",
        trial,
        seed,
        axes={"n": sizes},
        protocol="timebounded",
        timing=("synchronous", {"delta": 1.0}),
        rho=0.005,
    )


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E7",
        title="simulation cost vs path length",
        claim=(
            "messages grow linearly in the number of escrows (5n + "
            "constant); wall time (see benchmarks/) stays in "
            "milliseconds at n=64."
        ),
        columns=["n", "messages", "events", "sim_end_time"],
    )
    sweep.raise_any()
    for record in sweep:
        result.add_row(
            n=record.spec.opt("n"),
            messages=record["messages"],
            events=record["events"],
            sim_end_time=record["sim_end_time"],
        )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
