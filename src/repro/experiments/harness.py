"""Experiment harness: result records and sweep helpers.

Also home to the declarative payment-trial conveniences the experiment
modules share: :func:`build_timing` turns a primitive timing descriptor
into a timing model, and :func:`payment_session` assembles a
:class:`~repro.core.session.PaymentSession` from a
:class:`~repro.runtime.spec.TrialSpec`'s options.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """One experiment's table, ready for rendering and assertions."""

    exp_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> Dict[str, Any]:
        row = dict(values)
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ExperimentError(f"row missing columns {missing}")
        unknown = [k for k in row if k not in self.columns]
        if unknown:
            raise ExperimentError(
                f"row has unknown columns {unknown}; declared: {self.columns}"
            )
        self.rows.append(row)
        return row

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def find_rows(self, **match: Any) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in match.items())
        ]


def fraction(flags: Iterable[bool]) -> float:
    """Share of True values (0 for empty input)."""
    flags = list(flags)
    return sum(1 for f in flags if f) / len(flags) if flags else 0.0


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def seeds_for(quick: bool, quick_count: int = 10, full_count: int = 40) -> List[int]:
    """Standard seed list for Monte-Carlo sweeps."""
    return list(range(quick_count if quick else full_count))


# -- declarative payment trials ------------------------------------------


def build_timing(descriptor: Sequence[Any]):
    """Build a timing model from a primitive ``(kind, params)`` pair.

    Trial specs must carry plain data only, so timing models travel as
    e.g. ``("synchronous", {"delta": 1.0})``,
    ``("partial", {"gst": 40.0, "delta": 1.0})``, or
    ``("asynchronous", {"mean_delay": 1.0})`` and are instantiated
    inside the trial function.
    """
    from ..net.timing import Asynchronous, PartialSynchrony, Synchronous

    kind = descriptor[0]
    params = dict(descriptor[1]) if len(descriptor) > 1 else {}
    if kind == "synchronous":
        return Synchronous(**params)
    if kind == "partial":
        return PartialSynchrony(**params)
    if kind == "asynchronous":
        return Asynchronous(**params)
    raise ExperimentError(f"unknown timing descriptor kind: {kind!r}")


def payment_session(spec, **overrides):
    """Assemble a linear-path :class:`PaymentSession` from a trial spec.

    Recognised option keys (overridable per call): ``n`` (escrow
    count), ``protocol``, ``timing`` (descriptor for
    :func:`build_timing`), ``rho``, ``byzantine``, ``horizon``,
    ``protocol_options``, ``payment_id``.  Non-primitive collaborators
    (clocks, adversaries) cannot ride in a spec and are passed via
    ``overrides`` by the trial function itself.  The session seed is
    the spec's derived trial seed.
    """
    from ..core.session import PaymentSession
    from ..core.topology import PaymentTopology

    opts = {**spec.options, **overrides}
    payment_id = opts.get("payment_id") or "-".join(
        str(c) for c in spec.coords
    ) or "payment"
    topo = PaymentTopology.linear(opts["n"], payment_id=payment_id)
    return PaymentSession(
        topo,
        opts["protocol"],
        build_timing(opts["timing"]),
        adversary=opts.get("adversary"),
        seed=spec.seed,
        rho=opts.get("rho", 0.0),
        clocks=opts.get("clocks"),
        byzantine=opts.get("byzantine"),
        horizon=opts.get("horizon"),
        protocol_options=opts.get("protocol_options"),
    )


__all__ = [
    "ExperimentResult",
    "build_timing",
    "fraction",
    "mean",
    "payment_session",
    "seeds_for",
]
