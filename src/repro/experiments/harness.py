"""Experiment harness: result records and sweep helpers."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """One experiment's table, ready for rendering and assertions."""

    exp_id: str
    title: str
    claim: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> Dict[str, Any]:
        row = dict(values)
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ExperimentError(f"row missing columns {missing}")
        self.rows.append(row)
        return row

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def find_rows(self, **match: Any) -> List[Dict[str, Any]]:
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in match.items())
        ]


def fraction(flags: Iterable[bool]) -> float:
    """Share of True values (0 for empty input)."""
    flags = list(flags)
    return sum(1 for f in flags if f) / len(flags) if flags else 0.0


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def seeds_for(quick: bool, quick_count: int = 10, full_count: int = 40) -> List[int]:
    """Standard seed list for Monte-Carlo sweeps."""
    return list(range(quick_count if quick else full_count))


__all__ = ["ExperimentResult", "fraction", "mean", "seeds_for"]
