"""E6 — Section 5: cross-chain deals vs cross-chain payments.

Reproduces the comparison the paper draws with Herlihy–Liskov–Shrira:

* the **timelock commit** protocol achieves Safety / Termination /
  Strong liveness under synchrony but loses Safety under partial
  synchrony (a compliant party ends with an unacceptable payoff);
* the **certified-blockchain commit** protocol keeps Safety and
  Termination under partial synchrony but cannot offer strong
  liveness (an early abort kills a deal everyone wanted);
* the **separation**: a payment's path digraph is not a well-formed
  deal; all-abort is deal-acceptable but payment-forbidden; a cyclic
  deal cannot be expressed as a payment.
"""

from __future__ import annotations

from ..deals import (
    DealMatrix,
    DealSession,
    build_certified_deal,
    build_timelock_deal,
    separation_report,
)
from ..net.adversary import EdgeDelayAdversary
from ..net.timing import PartialSynchrony, Synchronous
from .harness import ExperimentResult, fraction, seeds_for


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E6",
        title="cross-chain deals (Herlihy et al.) vs payments (Section 5)",
        claim=(
            "timelock: all three deal properties under synchrony, Safety "
            "lost under partial synchrony; certified: Safety+Termination "
            "under partial synchrony, no strong liveness; payments and "
            "deals are mutually inexpressible."
        ),
        columns=[
            "protocol", "graph", "timing", "scenario",
            "safety", "termination", "strong_liveness",
        ],
    )
    graphs = [
        ("cycle-3", DealMatrix.cycle(["p0", "p1", "p2"])),
        ("clique-3", DealMatrix.clique(["p0", "p1", "p2"])),
    ]
    if not quick:
        graphs.append(("cycle-5", DealMatrix.cycle([f"p{i}" for i in range(5)])))

    for gname, matrix in graphs:
        # Timelock, synchrony, honest:
        safety, term, live = [], [], []
        for s in seeds_for(quick, quick_count=5, full_count=15):
            outcome = DealSession(
                matrix, build_timelock_deal, Synchronous(1.0), seed=seed * 100 + s
            ).run()
            safety.append(outcome.safety_ok())
            term.append(outcome.termination_ok())
            live.append(outcome.all_transfers_happened)
        result.add_row(
            protocol="timelock", graph=gname, timing="synchronous",
            scenario="honest",
            safety=fraction(safety), termination=fraction(term),
            strong_liveness=fraction(live),
        )
        # Timelock, partial synchrony, targeted reveal delay:
        adversary = EdgeDelayAdversary([("esc_1_2", "p1")])
        outcome = DealSession(
            matrix,
            build_timelock_deal,
            PartialSynchrony(gst=500.0, delta=0.2, pre_gst_scale=0.0),
            adversary=adversary,
            seed=seed,
        ).run()
        result.add_row(
            protocol="timelock", graph=gname, timing="partial-synchrony",
            scenario="delayed reveal",
            safety=outcome.safety_ok(), termination=outcome.termination_ok(),
            strong_liveness=outcome.all_transfers_happened,
        )
        # Certified, partial synchrony, honest & patient:
        outcome = DealSession(
            matrix,
            build_certified_deal,
            PartialSynchrony(gst=10.0, delta=1.0),
            seed=seed,
            options={"patience": 500.0},
            horizon=5_000.0,
        ).run()
        result.add_row(
            protocol="certified", graph=gname, timing="partial-synchrony",
            scenario="honest, patient",
            safety=outcome.safety_ok(), termination=outcome.termination_ok(),
            strong_liveness=outcome.all_transfers_happened,
        )
        # Certified, abort-first (strong liveness impossible):
        outcome = DealSession(
            matrix,
            build_certified_deal,
            PartialSynchrony(gst=10.0, delta=1.0),
            seed=seed,
            byzantine={1: "abort_immediately"},
            options={"patience": 500.0},
            horizon=5_000.0,
        ).run()
        result.add_row(
            protocol="certified", graph=gname, timing="partial-synchrony",
            scenario="party 1 aborts first",
            safety=outcome.safety_ok(), termination=outcome.termination_ok(),
            strong_liveness=outcome.all_transfers_happened,
        )

    sep = separation_report()
    for key, value in sep.items():
        result.note(f"separation: {key} = {value}")
    return result


__all__ = ["run"]
