"""E6 — Section 5: cross-chain deals vs cross-chain payments.

Reproduces the comparison the paper draws with Herlihy–Liskov–Shrira:

* the **timelock commit** protocol achieves Safety / Termination /
  Strong liveness under synchrony but loses Safety under partial
  synchrony (a compliant party ends with an unacceptable payoff);
* the **certified-blockchain commit** protocol keeps Safety and
  Termination under partial synchrony but cannot offer strong
  liveness (an early abort kills a deal everyone wanted);
* the **separation**: a payment's path digraph is not a well-formed
  deal; all-abort is deal-acceptable but payment-forbidden; a cyclic
  deal cannot be expressed as a payment.
"""

from __future__ import annotations

from typing import Any, Dict

from ..deals import (
    DealMatrix,
    DealSession,
    build_certified_deal,
    build_timelock_deal,
    separation_report,
)
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, build_timing, fraction, seeds_for

SCENARIOS = [
    ("timelock", "synchronous", "honest"),
    ("timelock", "partial-synchrony", "delayed reveal"),
    ("certified", "partial-synchrony", "honest, patient"),
    ("certified", "partial-synchrony", "party 1 aborts first"),
]


def _matrix(graph: str) -> DealMatrix:
    kind, _, size = graph.partition("-")
    parties = [f"p{i}" for i in range(int(size))]
    if kind == "cycle":
        return DealMatrix.cycle(parties)
    if kind == "clique":
        return DealMatrix.clique(parties)
    raise ValueError(f"unknown deal graph: {graph!r}")


def trial(spec) -> Dict[str, Any]:
    from ..net.adversary import EdgeDelayAdversary

    scenario = spec.opt("scenario")
    builder = (
        build_timelock_deal
        if spec.opt("deal_protocol") == "timelock"
        else build_certified_deal
    )
    adversary = None
    if scenario == "delayed reveal":
        adversary = EdgeDelayAdversary([("esc_1_2", "p1")])
    byzantine = spec.opt("byzantine")
    if byzantine:
        # Deal byzantine maps are keyed by party *index*; JSON-ish spec
        # options keep keys as given, so coerce back to int.
        byzantine = {int(k): v for k, v in dict(byzantine).items()}
    outcome = DealSession(
        _matrix(spec.opt("graph")),
        builder,
        build_timing(spec.opt("timing")),
        adversary=adversary,
        seed=spec.seed,
        byzantine=byzantine,
        options=dict(spec.opt("options") or {}),
        horizon=spec.opt("horizon", 100_000.0),
    ).run()
    return {
        "safety": outcome.safety_ok(),
        "termination": outcome.termination_ok(),
        "strong_liveness": outcome.all_transfers_happened,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    graphs = ["cycle-3", "clique-3"]
    if not quick:
        graphs.append("cycle-5")
    sweep = SweepSpec(sweep_id="E6")
    for graph in graphs:
        # Timelock, synchrony, honest — the only sampled scenario:
        for s in seeds_for(quick, quick_count=5, full_count=15):
            sweep.add(
                trial,
                seed,
                (graph, "timelock-sync", s),
                graph=graph,
                deal_protocol="timelock",
                scenario="honest",
                timing=("synchronous", {"delta": 1.0}),
            )
        # Timelock, partial synchrony, targeted reveal delay:
        sweep.add(
            trial,
            seed,
            (graph, "timelock-psync"),
            graph=graph,
            deal_protocol="timelock",
            scenario="delayed reveal",
            timing=(
                "partial",
                {"gst": 500.0, "delta": 0.2, "pre_gst_scale": 0.0},
            ),
        )
        # Certified, partial synchrony, honest & patient:
        sweep.add(
            trial,
            seed,
            (graph, "certified-honest"),
            graph=graph,
            deal_protocol="certified",
            scenario="honest, patient",
            timing=("partial", {"gst": 10.0, "delta": 1.0}),
            options={"patience": 500.0},
            horizon=5_000.0,
        )
        # Certified, abort-first (strong liveness impossible):
        sweep.add(
            trial,
            seed,
            (graph, "certified-abort"),
            graph=graph,
            deal_protocol="certified",
            scenario="party 1 aborts first",
            timing=("partial", {"gst": 10.0, "delta": 1.0}),
            byzantine={1: "abort_immediately"},
            options={"patience": 500.0},
            horizon=5_000.0,
        )
    return sweep


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E6",
        title="cross-chain deals (Herlihy et al.) vs payments (Section 5)",
        claim=(
            "timelock: all three deal properties under synchrony, Safety "
            "lost under partial synchrony; certified: Safety+Termination "
            "under partial synchrony, no strong liveness; payments and "
            "deals are mutually inexpressible."
        ),
        columns=[
            "protocol", "graph", "timing", "scenario",
            "safety", "termination", "strong_liveness",
        ],
    )
    sweep.raise_any()
    for graph in sweep.distinct("graph"):
        sampled = sweep.select(graph=graph, scenario="honest")
        result.add_row(
            protocol="timelock", graph=graph, timing="synchronous",
            scenario="honest",
            safety=fraction(r["safety"] for r in sampled),
            termination=fraction(r["termination"] for r in sampled),
            strong_liveness=fraction(r["strong_liveness"] for r in sampled),
        )
        for protocol, timing, scenario in SCENARIOS[1:]:
            (record,) = sweep.select(graph=graph, scenario=scenario)
            result.add_row(
                protocol=protocol, graph=graph, timing=timing,
                scenario=scenario,
                safety=record["safety"],
                termination=record["termination"],
                strong_liveness=record["strong_liveness"],
            )
    sep = separation_report()
    for key, value in sep.items():
        result.note(f"separation: {key} = {value}")
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
