"""E1 — Theorem 1: the time-bounded protocol under synchrony.

Sweep path length and seeds; with everyone honest, bounded drift, and
the drift-tuned calculus, **every** run must satisfy Definition 1 (all
seven properties), Bob is always paid, and every customer terminates
within the a-priori bound.
"""

from __future__ import annotations

from typing import Any, Dict

from ..properties import check_definition1
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import (
    ExperimentResult,
    fraction,
    mean,
    payment_session,
    seeds_for,
)

DELTA = 1.0
EPSILON = 0.05
RHO = 0.01


def trial(spec) -> Dict[str, Any]:
    """One payment run; returns the scalars the table aggregates."""
    session = payment_session(spec)
    outcome = session.run()
    bound = session.protocol_instance.params.global_termination_bound()
    report = check_definition1(outcome, termination_bound=bound)
    return {
        "bob_paid": outcome.bob_paid,
        "def1_ok": report.all_ok,
        "term_time": max(
            t for t in outcome.termination_times.values() if t is not None
        ),
        "messages": outcome.messages_sent,
        "bound": bound,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    sizes = [1, 2, 4] if quick else [1, 2, 4, 6, 8]
    return SweepSpec.grid(
        "E1",
        trial,
        seed,
        axes={"n": sizes, "s": seeds_for(quick)},
        protocol="timebounded",
        timing=("synchronous", {"delta": DELTA}),
        rho=RHO,
        protocol_options={"epsilon": EPSILON},
    )


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E1",
        title="time-bounded protocol under synchrony (Theorem 1)",
        claim=(
            "Assuming synchrony, the drift-tuned universal protocol solves "
            "time-bounded cross-chain payment: all of C, T, ES, CS1-3, L "
            "hold on every run."
        ),
        columns=[
            "n", "runs", "bob_paid", "def1_ok", "max_term_time",
            "bound", "mean_msgs",
        ],
    )
    sweep.raise_any()
    for n in sweep.distinct("n"):
        records = sweep.select(n=n)
        result.add_row(
            n=n,
            runs=len(records),
            bob_paid=fraction(r["bob_paid"] for r in records),
            def1_ok=fraction(r["def1_ok"] for r in records),
            max_term_time=max(r["term_time"] for r in records),
            bound=records[-1]["bound"],
            mean_msgs=mean(r["messages"] for r in records),
        )
    result.note(
        f"delta={DELTA}, epsilon={EPSILON}, rho={RHO}; bob_paid and def1_ok "
        "are fractions of runs (1.0 = theorem reproduced)."
    )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
