"""E1 — Theorem 1: the time-bounded protocol under synchrony.

Sweep path length and seeds; with everyone honest, bounded drift, and
the drift-tuned calculus, **every** run must satisfy Definition 1 (all
seven properties), Bob is always paid, and every customer terminates
within the a-priori bound.
"""

from __future__ import annotations

from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.timing import Synchronous
from ..properties import check_definition1
from .harness import ExperimentResult, fraction, mean, seeds_for

DELTA = 1.0
EPSILON = 0.05
RHO = 0.01


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E1",
        title="time-bounded protocol under synchrony (Theorem 1)",
        claim=(
            "Assuming synchrony, the drift-tuned universal protocol solves "
            "time-bounded cross-chain payment: all of C, T, ES, CS1-3, L "
            "hold on every run."
        ),
        columns=[
            "n", "runs", "bob_paid", "def1_ok", "max_term_time",
            "bound", "mean_msgs",
        ],
    )
    sizes = [1, 2, 4] if quick else [1, 2, 4, 6, 8]
    for n in sizes:
        paid, ok, terms, msgs = [], [], [], []
        bound = None
        for s in seeds_for(quick):
            topo = PaymentTopology.linear(n, payment_id=f"e1-{n}-{s}")
            session = PaymentSession(
                topo,
                "timebounded",
                Synchronous(DELTA),
                seed=seed * 1000 + s,
                rho=RHO,
                protocol_options={"epsilon": EPSILON},
            )
            outcome = session.run()
            bound = session.protocol_instance.params.global_termination_bound()
            report = check_definition1(outcome, termination_bound=bound)
            paid.append(outcome.bob_paid)
            ok.append(report.all_ok)
            terms.append(
                max(
                    t for t in outcome.termination_times.values() if t is not None
                )
            )
            msgs.append(outcome.messages_sent)
        result.add_row(
            n=n,
            runs=len(paid),
            bob_paid=fraction(paid),
            def1_ok=fraction(ok),
            max_term_time=max(terms),
            bound=bound,
            mean_msgs=mean(msgs),
        )
    result.note(
        f"delta={DELTA}, epsilon={EPSILON}, rho={RHO}; bob_paid and def1_ok "
        "are fractions of runs (1.0 = theorem reproduced)."
    )
    return result


__all__ = ["run"]
