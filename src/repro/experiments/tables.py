"""ASCII table rendering for experiment results."""

from __future__ import annotations

from typing import Any, List

from .harness import ExperimentResult


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Fixed-width table with title, claim, rows, and notes."""
    header = result.columns
    body = [[_fmt(row.get(col, "")) for col in header] for row in result.rows]
    widths = [
        max(len(col), *(len(line[i]) for line in body)) if body else len(col)
        for i, col in enumerate(header)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [
        f"== {result.exp_id}: {result.title} ==",
        f"claim: {result.claim}",
        "",
        " | ".join(col.ljust(w) for col, w in zip(header, widths)),
        sep,
    ]
    for line in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


__all__ = ["render_table"]
