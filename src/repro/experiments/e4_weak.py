"""E4 — Theorem 3: the weak-liveness protocol.

Patience sweep under partial synchrony (trusted TM): impatient
customers abort *safely*; patient ones commit.  Byzantine rows show the
conditional safety clauses doing their job — no honest participant with
honest escrows ever loses value, whatever the deviation.
"""

from __future__ import annotations

from typing import Any, Dict

from ..properties import check_definition2
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, fraction, seeds_for, payment_session

N = 3
GST = 40.0
DELTA = 1.0

BYZ_CASES = [
    ("alice aborts at once", {"c0": "abort_immediately"}),
    ("connector never deposits", {"c1": "never_deposit"}),
    ("bob never requests commit", {f"c{N}": "bob_never_commit"}),
]


def trial(spec) -> Dict[str, Any]:
    patience = spec.opt("patience")
    outcome = payment_session(
        spec,
        protocol_options={
            "tm": "trusted",
            "patience_setup": patience,
            "patience_decision": patience,
        },
    ).run()
    if spec.opt("byzantine"):
        patient = False
    else:
        # "Patient enough" in this world = patience comfortably past
        # GST + decision round-trips:
        patient = patience > GST + 10 * DELTA
    report = check_definition2(outcome, patient=patient)
    return {
        "committed": "commit" in outcome.decision_kinds_issued(),
        "bob_paid": outcome.bob_paid,
        "safe": report.all_ok,
        "props": sorted(v.property_id.value for v in report.violations()),
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    # 2.0 is comfortably below any lucky pre-GST delivery schedule, so
    # the impatient row aborts on every seed (the 5.0 of the original
    # sweep commits on ~10% of seeds — legal, but noisy for a headline).
    patience_values = (
        [2.0, 30.0, 5000.0]
        if quick
        else [2.0, 5.0, 15.0, 30.0, 100.0, 5000.0]
    )
    common = dict(
        n=N,
        protocol="weak",
        timing=("partial", {"gst": GST, "delta": DELTA}),
        rho=0.01,
        horizon=100_000.0,
    )
    sweep = SweepSpec.grid(
        "E4",
        trial,
        seed,
        axes={
            "patience": patience_values,
            "s": seeds_for(quick, quick_count=8, full_count=25),
        },
        scenario="honest",
        **common,
    )
    for label, byz in BYZ_CASES:
        for s in seeds_for(quick, quick_count=5, full_count=15):
            sweep.add(
                trial,
                seed,
                (label, s),
                scenario=label,
                patience=30.0,
                byzantine=byz,
                **common,
            )
    return sweep


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E4",
        title="weak-liveness protocol under partial synchrony (Theorem 3)",
        claim=(
            "Safety (C, CC, ES, CS1-3) holds on every run; commit happens "
            "exactly when customers out-wait the delays (weak liveness); "
            "impatient or Byzantine runs abort without losses."
        ),
        columns=[
            "scenario", "patience", "runs", "committed", "bob_paid",
            "safety_ok", "violated",
        ],
    )
    sweep.raise_any()
    for scenario in sweep.distinct("scenario"):
        patiences: list = []
        for record in sweep.select(scenario=scenario):
            if record.spec.opt("patience") not in patiences:
                patiences.append(record.spec.opt("patience"))
        for patience in patiences:
            records = sweep.select(scenario=scenario, patience=patience)
            props: set = set()
            for record in records:
                props |= set(record["props"])
            result.add_row(
                scenario=scenario,
                patience=patience,
                runs=len(records),
                committed=fraction(r["committed"] for r in records),
                bob_paid=fraction(r["bob_paid"] for r in records),
                safety_ok=fraction(r["safe"] for r in records),
                violated=",".join(sorted(props)) or "-",
            )
    result.note(f"n={N} escrows, GST={GST}, delta={DELTA}, trusted-party TM.")
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
