"""E4 — Theorem 3: the weak-liveness protocol.

Patience sweep under partial synchrony (trusted TM): impatient
customers abort *safely*; patient ones commit.  Byzantine rows show the
conditional safety clauses doing their job — no honest participant with
honest escrows ever loses value, whatever the deviation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.timing import PartialSynchrony
from ..properties import check_definition2
from .harness import ExperimentResult, fraction, seeds_for

N = 3
GST = 40.0
DELTA = 1.0


def _run_once(
    patience: Optional[float],
    byzantine: Dict[str, str],
    seed: int,
    payment_id: str,
):
    topo = PaymentTopology.linear(N, payment_id=payment_id)
    session = PaymentSession(
        topo,
        "weak",
        PartialSynchrony(gst=GST, delta=DELTA),
        seed=seed,
        rho=0.01,
        byzantine=byzantine,
        horizon=100_000.0,
        protocol_options={
            "tm": "trusted",
            "patience_setup": patience,
            "patience_decision": patience,
        },
    )
    return session.run()


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E4",
        title="weak-liveness protocol under partial synchrony (Theorem 3)",
        claim=(
            "Safety (C, CC, ES, CS1-3) holds on every run; commit happens "
            "exactly when customers out-wait the delays (weak liveness); "
            "impatient or Byzantine runs abort without losses."
        ),
        columns=[
            "scenario", "patience", "runs", "committed", "bob_paid",
            "safety_ok", "violated",
        ],
    )
    patience_values = [5.0, 30.0, 5000.0] if quick else [2.0, 5.0, 15.0, 30.0, 100.0, 5000.0]
    for patience in patience_values:
        committed, paid, safe, props = [], [], [], set()
        for s in seeds_for(quick, quick_count=8, full_count=25):
            outcome = _run_once(
                patience, {}, seed * 100 + s, f"e4-p{patience}-{s}"
            )
            # "Patient enough" in this world = patience comfortably past
            # GST + decision round-trips:
            patient = patience > GST + 10 * DELTA
            report = check_definition2(outcome, patient=patient)
            committed.append("commit" in outcome.decision_kinds_issued())
            paid.append(outcome.bob_paid)
            safe.append(report.all_ok)
            props |= {v.property_id.value for v in report.violations()}
        result.add_row(
            scenario="honest",
            patience=patience,
            runs=len(paid),
            committed=fraction(committed),
            bob_paid=fraction(paid),
            safety_ok=fraction(safe),
            violated=",".join(sorted(props)) or "-",
        )
    byz_cases = [
        ("alice aborts at once", {"c0": "abort_immediately"}),
        ("connector never deposits", {"c1": "never_deposit"}),
        ("bob never requests commit", {f"c{N}": "bob_never_commit"}),
    ]
    for label, byz in byz_cases:
        committed, paid, safe, props = [], [], [], set()
        for s in seeds_for(quick, quick_count=5, full_count=15):
            outcome = _run_once(30.0, byz, seed * 100 + s, f"e4-{label[:8]}-{s}")
            report = check_definition2(outcome, patient=False)
            committed.append("commit" in outcome.decision_kinds_issued())
            paid.append(outcome.bob_paid)
            safe.append(report.all_ok)
            props |= {v.property_id.value for v in report.violations()}
        result.add_row(
            scenario=label,
            patience=30.0,
            runs=len(paid),
            committed=fraction(committed),
            bob_paid=fraction(paid),
            safety_ok=fraction(safe),
            violated=",".join(sorted(props)) or "-",
        )
    result.note(f"n={N} escrows, GST={GST}, delta={DELTA}, trusted-party TM.")
    return result


__all__ = ["run"]
