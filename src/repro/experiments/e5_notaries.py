"""E5 — transaction-manager realisations and their fault tolerance.

Part A compares the three TM realisations the paper proposes (trusted
party / smart contract / notary committee) on the same payment: all
commit; they differ in decision latency and message cost.

Part B probes certificate consistency (CC):

* a *Byzantine trusted party* that equivocates (commit certs to half
  the participants, abort to the rest) breaks CC outright — single
  points of trust are fragile;
* a notary committee sized for ``f = 1`` (N = 4, quorum 2f+1 = 3) keeps
  CC under an orchestrated split-vote attack with 1 traitor, and loses
  it with 2 — exactly the < N/3 bound the paper imports from DLS.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..consensus.dls import Notary, NotaryBehavior
from ..crypto.certificates import Decision
from ..crypto.keys import KeyRing
from ..net.network import Network
from ..net.timing import PartialSynchrony
from ..properties import check_definition2
from ..runtime import SweepResult, SweepSpec, resolve_executor
from ..sim.kernel import Simulator
from ..sim.trace import TraceKind
from .harness import ExperimentResult, payment_session

N_ESCROWS = 2

BACKENDS = [
    ("trusted", "trusted party"),
    (("contract", {"block_interval": 1.0, "confirmations": 2}), "smart contract"),
    (("committee", {"n_notaries": 4, "round_duration": 5.0}), "committee N=4"),
]

#: The attacker picks its schedule: best of this many seeds per row.
ATTACK_SEEDS = 4


def _committee_split_attack(
    n_notaries: int, f_actual: int, seed: int
) -> Tuple[set, bool]:
    """Run the orchestrated split-vote attack at the consensus level.

    Honest notaries receive conflicting (but individually justified)
    inputs; ``f_actual`` traitors equivocate as leader and double-vote;
    the pre-GST network adversary *partitions the echoes* so that
    notary2 sees only commit endorsements and notary3 only abort
    endorsements until GST.  Returns (decisions reached by honest
    notaries, conflicting-QCs possible from the union of all signed
    votes).
    """
    from ..consensus.messages import ConsensusMsg, Phase
    from ..net.adversary import HOLD, PredicateDelayAdversary

    def partition(envelope) -> bool:
        msg = envelope.payload
        if not isinstance(msg, ConsensusMsg) or msg.phase not in (
            Phase.ECHO,
            Phase.DECIDE,
        ):
            return False
        return (
            envelope.recipient == "notary2" and msg.value is Decision.ABORT
        ) or (
            envelope.recipient == "notary3" and msg.value is Decision.COMMIT
        )

    sim = Simulator(seed=seed)
    network = Network(
        sim,
        PartialSynchrony(gst=60.0, delta=0.5),
        adversary=PredicateDelayAdversary(partition, delay=HOLD),
    )
    keyring = KeyRing(domain="e5")
    committee = [f"notary{i}" for i in range(n_notaries)]
    f_assumed = (n_notaries - 1) // 3
    threshold = 2 * f_assumed + 1
    notaries: List[Notary] = []
    for i, name in enumerate(committee):
        behavior = (
            NotaryBehavior(equivocate_leader=True, double_vote=True)
            if i < f_actual
            else None
        )
        notary = Notary(
            sim,
            name,
            network,
            keyring,
            keyring.create(name),
            committee=committee,
            f=f_assumed,
            payment_id="e5",
            round_duration=5.0,
            behavior=behavior,
        )
        network.register(notary)
        notaries.append(notary)
    evidence = {"commit_requested": True, "abort_requested": True}
    for i, notary in enumerate(notaries):
        value = Decision.COMMIT if i % 2 == 0 else Decision.ABORT
        sim.schedule(0.0, notary.submit_preference, value, evidence)
    sim.run(until=5_000.0, max_events=200_000)
    honest_decisions = {
        n.decided.value
        for i, n in enumerate(notaries)
        if i >= f_actual and n.decided is not None
    }
    # Union of every signed vote in existence — what an attacker could
    # hand to different participants:
    votes: Dict[Decision, set] = {Decision.COMMIT: set(), Decision.ABORT: set()}
    for notary in notaries:
        for value in (Decision.COMMIT, Decision.ABORT):
            votes[value] |= set(notary._decides[value])
    conflicting = (
        len(votes[Decision.COMMIT]) >= threshold
        and len(votes[Decision.ABORT]) >= threshold
    )
    return honest_decisions, conflicting


def trial(spec) -> Dict[str, Any]:
    variant = spec.opt("variant")
    if variant == "attack":
        decisions, conflicting = _committee_split_attack(
            spec.opt("n_notaries", 4), spec.opt("f_actual"), spec.seed
        )
        return {"decisions": sorted(decisions), "conflicting": conflicting}
    if variant == "equivocating":
        from ..protocols.weak.tm import TrustedPartyBackend

        tm: Any = TrustedPartyBackend(equivocate=True)
    else:
        tm = spec.opt("tm")
        # Specs carry plain lists; the TM registry expects tuples.
        if isinstance(tm, (list, tuple)):
            tm = (tm[0], dict(tm[1]))
    outcome = payment_session(
        spec,
        protocol_options={
            "tm": tm,
            "patience_setup": 10_000.0,
            "patience_decision": 10_000.0,
        },
    ).run()
    report = check_definition2(outcome, patient=True)
    if variant == "equivocating":
        decision_time = float("nan")  # no single honest decision point
    else:
        first = outcome.trace.first(
            predicate=lambda e: e.kind
            in (TraceKind.CERT_ISSUED, TraceKind.CERT_RECEIVED)
            and e.get("cert") in ("commit", "abort")
        )
        decision_time = first.time if first else float("nan")
    return {
        "decided": ",".join(sorted(outcome.decision_kinds_issued())) or "-",
        "bob_paid": outcome.bob_paid,
        "cc_ok": not [
            v for v in report.violations() if v.property_id.value == "CC"
        ],
        "decision_time": decision_time,
        "messages": outcome.messages_sent,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    sweep = SweepSpec(sweep_id="E5")
    common = dict(
        n=N_ESCROWS,
        protocol="weak",
        timing=("synchronous", {"delta": 1.0}),
        horizon=100_000.0,
    )
    for tm_spec, label in BACKENDS:
        sweep.add(
            trial,
            seed,
            ("backend", label),
            variant="backend",
            label=label,
            tm=tm_spec,
            payment_id=f"e5-{label}",
            **common,
        )
    sweep.add(
        trial,
        seed,
        ("equivocating",),
        variant="equivocating",
        label="trusted party, equivocating",
        payment_id="e5-equiv",
        **common,
    )
    fs = [0, 1, 2] if quick else [0, 1, 2, 3]
    for f_actual in fs:
        for s in range(ATTACK_SEEDS):
            sweep.add(
                trial,
                seed,
                ("attack", f_actual, s),
                variant="attack",
                f_actual=f_actual,
                n_notaries=4,
                s=s,
            )
    return sweep


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E5",
        title="transaction-manager realisations (trusted / contract / committee)",
        claim=(
            "All three TM realisations implement Definition 2; the trusted "
            "party is a single point of failure for CC, while the notary "
            "committee preserves CC exactly for f < N/3 traitors."
        ),
        columns=[
            "configuration", "decided", "bob_paid", "cc_ok",
            "decision_time", "messages",
        ],
    )
    sweep.raise_any()
    for record in sweep.select(variant="backend") + sweep.select(
        variant="equivocating"
    ):
        result.add_row(
            configuration=record.spec.opt("label"),
            decided=record["decided"],
            bob_paid=record["bob_paid"],
            cc_ok=record["cc_ok"],
            decision_time=record["decision_time"],
            messages=record["messages"],
        )
    for f_actual in sweep.distinct("f_actual"):
        if f_actual is None:
            continue
        best_decisions: set = set()
        best_conflict = False
        # The attacker gets its pick of schedules: the first conflicting
        # seed wins outright, otherwise decisions accumulate.
        for record in sweep.select(variant="attack", f_actual=f_actual):
            best_decisions |= set(record["decisions"])
            if record["conflicting"]:
                best_decisions = set(record["decisions"])
                best_conflict = True
                break
        result.add_row(
            configuration=f"committee N=4, traitors={f_actual} (split attack)",
            decided=",".join(sorted(best_decisions)) or "-",
            bob_paid="-",
            cc_ok=not best_conflict,
            decision_time=float("nan"),
            messages="-",
        )
    result.note(
        "committee rows run the consensus layer directly under an "
        "orchestrated split of honest preferences; cc_ok = no pair of "
        "conflicting quorum certificates can be assembled from all votes."
    )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
