"""E5 — transaction-manager realisations and their fault tolerance.

Part A compares the three TM realisations the paper proposes (trusted
party / smart contract / notary committee) on the same payment: all
commit; they differ in decision latency and message cost.

Part B probes certificate consistency (CC):

* a *Byzantine trusted party* that equivocates (commit certs to half
  the participants, abort to the rest) breaks CC outright — single
  points of trust are fragile;
* a notary committee sized for ``f = 1`` (N = 4, quorum 2f+1 = 3) keeps
  CC under an orchestrated split-vote attack with 1 traitor, and loses
  it with 2 — exactly the < N/3 bound the paper imports from DLS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..consensus.dls import Notary, NotaryBehavior
from ..crypto.certificates import Decision
from ..crypto.keys import KeyRing
from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.network import Network
from ..net.timing import PartialSynchrony, Synchronous
from ..properties import check_definition2
from ..sim.kernel import Simulator
from ..sim.trace import TraceKind
from .harness import ExperimentResult

N_ESCROWS = 2


def _committee_split_attack(
    n_notaries: int, f_actual: int, seed: int
) -> Tuple[set, bool]:
    """Run the orchestrated split-vote attack at the consensus level.

    Honest notaries receive conflicting (but individually justified)
    inputs; ``f_actual`` traitors equivocate as leader and double-vote;
    the pre-GST network adversary *partitions the echoes* so that
    notary2 sees only commit endorsements and notary3 only abort
    endorsements until GST.  Returns (decisions reached by honest
    notaries, conflicting-QCs possible from the union of all signed
    votes).
    """
    from ..consensus.messages import ConsensusMsg, Phase
    from ..net.adversary import HOLD, PredicateDelayAdversary

    def partition(envelope) -> bool:
        msg = envelope.payload
        if not isinstance(msg, ConsensusMsg) or msg.phase not in (
            Phase.ECHO,
            Phase.DECIDE,
        ):
            return False
        return (
            envelope.recipient == "notary2" and msg.value is Decision.ABORT
        ) or (
            envelope.recipient == "notary3" and msg.value is Decision.COMMIT
        )

    sim = Simulator(seed=seed)
    network = Network(
        sim,
        PartialSynchrony(gst=60.0, delta=0.5),
        adversary=PredicateDelayAdversary(partition, delay=HOLD),
    )
    keyring = KeyRing(domain="e5")
    committee = [f"notary{i}" for i in range(n_notaries)]
    f_assumed = (n_notaries - 1) // 3
    threshold = 2 * f_assumed + 1
    notaries: List[Notary] = []
    for i, name in enumerate(committee):
        behavior = (
            NotaryBehavior(equivocate_leader=True, double_vote=True)
            if i < f_actual
            else None
        )
        notary = Notary(
            sim,
            name,
            network,
            keyring,
            keyring.create(name),
            committee=committee,
            f=f_assumed,
            payment_id="e5",
            round_duration=5.0,
            behavior=behavior,
        )
        network.register(notary)
        notaries.append(notary)
    evidence = {"commit_requested": True, "abort_requested": True}
    for i, notary in enumerate(notaries):
        value = Decision.COMMIT if i % 2 == 0 else Decision.ABORT
        sim.schedule(0.0, notary.submit_preference, value, evidence)
    sim.run(until=5_000.0, max_events=200_000)
    honest_decisions = {
        n.decided.value
        for i, n in enumerate(notaries)
        if i >= f_actual and n.decided is not None
    }
    # Union of every signed vote in existence — what an attacker could
    # hand to different participants:
    votes: Dict[Decision, set] = {Decision.COMMIT: set(), Decision.ABORT: set()}
    for notary in notaries:
        for value in (Decision.COMMIT, Decision.ABORT):
            votes[value] |= set(notary._decides[value])
    conflicting = (
        len(votes[Decision.COMMIT]) >= threshold
        and len(votes[Decision.ABORT]) >= threshold
    )
    return honest_decisions, conflicting


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E5",
        title="transaction-manager realisations (trusted / contract / committee)",
        claim=(
            "All three TM realisations implement Definition 2; the trusted "
            "party is a single point of failure for CC, while the notary "
            "committee preserves CC exactly for f < N/3 traitors."
        ),
        columns=[
            "configuration", "decided", "bob_paid", "cc_ok",
            "decision_time", "messages",
        ],
    )
    # -- Part A: honest backends on the same payment --------------------
    for tm_spec, label in [
        ("trusted", "trusted party"),
        (("contract", {"block_interval": 1.0, "confirmations": 2}), "smart contract"),
        (("committee", {"n_notaries": 4, "round_duration": 5.0}), "committee N=4"),
    ]:
        topo = PaymentTopology.linear(N_ESCROWS, payment_id=f"e5-{label}")
        session = PaymentSession(
            topo,
            "weak",
            Synchronous(1.0),
            seed=seed,
            horizon=100_000.0,
            protocol_options={
                "tm": tm_spec,
                "patience_setup": 10_000.0,
                "patience_decision": 10_000.0,
            },
        )
        outcome = session.run()
        report = check_definition2(outcome, patient=True)
        first = outcome.trace.first(
            predicate=lambda e: e.kind
            in (TraceKind.CERT_ISSUED, TraceKind.CERT_RECEIVED)
            and e.get("cert") in ("commit", "abort")
        )
        result.add_row(
            configuration=label,
            decided=",".join(sorted(outcome.decision_kinds_issued())) or "-",
            bob_paid=outcome.bob_paid,
            cc_ok=not [
                v for v in report.violations() if v.property_id.value == "CC"
            ],
            decision_time=first.time if first else float("nan"),
            messages=outcome.messages_sent,
        )
    # -- Part B: Byzantine TMs -------------------------------------------
    from ..protocols.weak.tm import TrustedPartyBackend

    topo = PaymentTopology.linear(N_ESCROWS, payment_id="e5-equiv")
    session = PaymentSession(
        topo,
        "weak",
        Synchronous(1.0),
        seed=seed,
        horizon=100_000.0,
        protocol_options={
            "tm": TrustedPartyBackend(equivocate=True),
            "patience_setup": 10_000.0,
            "patience_decision": 10_000.0,
        },
    )
    outcome = session.run()
    report = check_definition2(outcome, patient=True)
    result.add_row(
        configuration="trusted party, equivocating",
        decided=",".join(sorted(outcome.decision_kinds_issued())) or "-",
        bob_paid=outcome.bob_paid,
        cc_ok=not [v for v in report.violations() if v.property_id.value == "CC"],
        decision_time=float("nan"),
        messages=outcome.messages_sent,
    )
    fs = [0, 1, 2] if quick else [0, 1, 2, 3]
    attack_seeds = range(4)  # the attacker picks its schedule: best of 4
    for f_actual in fs:
        best_decisions: set = set()
        best_conflict = False
        for s in attack_seeds:
            decisions, conflicting = _committee_split_attack(4, f_actual, seed + s)
            best_decisions |= decisions
            best_conflict = best_conflict or conflicting
            if best_conflict:
                best_decisions = decisions
                break
        result.add_row(
            configuration=f"committee N=4, traitors={f_actual} (split attack)",
            decided=",".join(sorted(best_decisions)) or "-",
            bob_paid="-",
            cc_ok=not best_conflict,
            decision_time=float("nan"),
            messages="-",
        )
    result.note(
        "committee rows run the consensus layer directly under an "
        "orchestrated split of honest preferences; cc_ok = no pair of "
        "conflicting quorum certificates can be assembled from all votes."
    )
    return result


__all__ = ["run"]
