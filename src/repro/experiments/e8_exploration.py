"""E8 — exhaustive verification of small instances.

Where E1/E4 sample schedules, E8 enumerates them: every combination of
boundary delays for the value-bearing messages of small configurations.
Zero violations over the full enumeration is the strongest executable
evidence this library can give for Theorems 1 and 3.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.topology import PaymentTopology
from ..net.message import MsgKind
from ..net.timing import Synchronous
from ..runtime import SweepResult, SweepSpec, resolve_executor
from ..verification.properties import (
    definition1_violations,
    definition2_violations,
)
from .harness import ExperimentResult

#: check name (in trial specs) -> shared violation-listing callable.
_CHECKS = {"def1": definition1_violations, "def2": definition2_violations}


def trial(spec) -> Dict[str, Any]:
    from ..verification import explore_payment

    n = spec.opt("n")
    report = explore_payment(
        topology_factory=lambda n=n: PaymentTopology.linear(n),
        protocol=spec.opt("protocol"),
        timing_factory=lambda: Synchronous(1.0),
        check=_CHECKS[spec.opt("check")],
        choices=list(spec.opt("choices")),
        seed=spec.seed,
        protocol_options=dict(spec.opt("protocol_options") or {}),
        decision_kinds=(
            MsgKind.MONEY,
            MsgKind.CERTIFICATE,
            MsgKind.DECISION,
            MsgKind.ESCROWED,
        ),
        max_paths=spec.opt("max_paths"),
    )
    return {
        "paths": report.paths,
        "max_decisions": report.decision_points_max,
        "violations": len(report.violations),
        "truncated": report.truncated,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    max_paths = 3000 if quick else 40_000
    configs = [
        ("timebounded n=1", 1, "timebounded", [0.0, 0.5, 1.0], "def1", {}),
        ("timebounded n=2", 2, "timebounded", [0.0, 1.0], "def1", {}),
    ]
    if not quick:
        configs.append(
            ("timebounded n=3", 3, "timebounded", [0.0, 1.0], "def1", {})
        )
    configs.append(
        (
            "weak n=1 (trusted TM)",
            1,
            "weak",
            [0.0, 1.0],
            "def2",
            {
                "tm": "trusted",
                "patience_setup": 10_000.0,
                "patience_decision": 10_000.0,
            },
        )
    )
    sweep = SweepSpec(sweep_id="E8")
    for label, n, protocol, choices, check, options in configs:
        sweep.add(
            trial,
            seed,
            (label,),
            label=label,
            n=n,
            protocol=protocol,
            choices=choices,
            check=check,
            protocol_options=options,
            max_paths=max_paths,
        )
    return sweep


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E8",
        title="bounded exhaustive schedule exploration",
        claim=(
            "for small instances, EVERY legal synchronous delivery "
            "schedule satisfies the corresponding definition (no sampled "
            "luck involved)."
        ),
        columns=["config", "choices", "paths", "max_decisions", "violations"],
    )
    sweep.raise_any()
    for record in sweep:
        result.add_row(
            config=record.spec.opt("label"),
            choices=len(record.spec.opt("choices")),
            paths=record["paths"],
            max_decisions=record["max_decisions"],
            violations=record["violations"],
        )
        if record["truncated"]:
            result.note(
                f"{record.spec.opt('label')}: enumeration truncated at "
                "max_paths"
            )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
