"""E8 — exhaustive verification of small instances.

Where E1/E4 sample schedules, E8 enumerates them: every combination of
boundary delays for the value-bearing messages of small configurations.
Zero violations over the full enumeration is the strongest executable
evidence this library can give for Theorems 1 and 3.
"""

from __future__ import annotations

from typing import List

from ..core.topology import PaymentTopology
from ..net.message import MsgKind
from ..net.timing import Synchronous
from ..properties import check_definition1, check_definition2
from ..verification import explore_payment
from .harness import ExperimentResult


def _def1_check(outcome) -> List[str]:
    return [repr(v) for v in check_definition1(outcome).violations()]


def _def2_check(outcome) -> List[str]:
    return [repr(v) for v in check_definition2(outcome, patient=True).violations()]


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E8",
        title="bounded exhaustive schedule exploration",
        claim=(
            "for small instances, EVERY legal synchronous delivery "
            "schedule satisfies the corresponding definition (no sampled "
            "luck involved)."
        ),
        columns=["config", "choices", "paths", "max_decisions", "violations"],
    )
    configs = [
        ("timebounded n=1", 1, "timebounded", [0.0, 0.5, 1.0], _def1_check, {}),
        ("timebounded n=2", 2, "timebounded", [0.0, 1.0], _def1_check, {}),
    ]
    if not quick:
        configs.append(
            ("timebounded n=3", 3, "timebounded", [0.0, 1.0], _def1_check, {})
        )
    configs.append(
        (
            "weak n=1 (trusted TM)",
            1,
            "weak",
            [0.0, 1.0],
            _def2_check,
            {
                "tm": "trusted",
                "patience_setup": 10_000.0,
                "patience_decision": 10_000.0,
            },
        )
    )
    for label, n, protocol, choices, check, options in configs:
        report = explore_payment(
            topology_factory=lambda n=n: PaymentTopology.linear(n),
            protocol=protocol,
            timing_factory=lambda: Synchronous(1.0),
            check=check,
            choices=choices,
            seed=seed,
            protocol_options=options,
            decision_kinds=(
                MsgKind.MONEY,
                MsgKind.CERTIFICATE,
                MsgKind.DECISION,
                MsgKind.ESCROWED,
            ),
            max_paths=3000 if quick else 40_000,
        )
        result.add_row(
            config=label,
            choices=len(choices),
            paths=report.paths,
            max_decisions=report.decision_points_max,
            violations=len(report.violations),
        )
        if report.truncated:
            result.note(f"{label}: enumeration truncated at max_paths")
    return result


__all__ = ["run"]
