"""E2 — the clock-drift fine-tuning ablation.

The paper's stated delta over prior work: "the synchronous solutions of
[Interledger] and [Herlihy et al.] do not consider clock drift".  We
run the *same* protocol with the **naive** timeout calculus (windows =
real-time bounds + margin, no (1+ρ) inflation) and with the paper's
**drift-tuned** calculus, under worst-case conditions: all delays at
the bound Δ, processing pinned at ε, and one mid-path escrow whose
clock runs maximally fast.

Analysis: the fast escrow ``e_1`` measures its window ``a_1`` on a
clock running at ``1+ρ``, so the real window is ``a_1/(1+ρ)``; the
certificate legitimately arrives after real time ``H_1``.  The naive
window ``H_1 + m`` therefore fails once ``ρ > m / H_1`` — with the
margin ``m = ε/2`` and ``n = 4`` hops that threshold is ρ ≈ 0.0024,
so every swept drift above zero breaks it.  The failure mode is the
nasty one: the drifting escrow refunds upstream while its downstream
peer already paid out — the connector between them ends out of pocket
(CS3), exactly the incident the paper's fine-tuning prevents.  The
tuned window ``(1+ρ)·H_1 + m`` never fails.
"""

from __future__ import annotations

from typing import Any, Dict

from ..clocks import extremal_clock
from ..properties import check_definition1
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, fraction, payment_session, seeds_for

DELTA = 1.0
EPSILON = 0.05
MARGIN = EPSILON / 2.0
N = 4
FAST_ESCROW = "e1"


def trial(spec) -> Dict[str, Any]:
    rho = spec.opt("rho_clock")
    session = payment_session(
        spec,
        # All delays exactly at the bound: the adversarially slow network
        # the calculus must survive.
        clocks={FAST_ESCROW: extremal_clock(rho, fast=True)},
        protocol_options={
            "epsilon": EPSILON,
            "rho": rho,
            "drift_tuned": spec.opt("drift_tuned"),
            "margin": MARGIN,
            "processing_floor": EPSILON,  # pin processing at its bound
        },
    )
    outcome = session.run()
    report = check_definition1(outcome)
    # A connector is monetarily harmed when her position has a negative
    # component and is not the success position — she paid downstream
    # without being paid upstream.  (If she is still waiting, the T
    # violation covers her; the money damage is what this surfaces.)
    harmed = any(
        any(u < 0 for u in outcome.position_delta(c).values())
        and not outcome.in_success_position(c)
        for c in outcome.topology.connectors()
    )
    return {
        "bob_paid": outcome.bob_paid,
        "bad": not report.all_ok,
        "harmed": harmed,
        "props": sorted(v.property_id.value for v in report.violations()),
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    rhos = (
        [0.0, 0.005, 0.02, 0.05]
        if quick
        else [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
    )
    return SweepSpec.grid(
        "E2",
        trial,
        seed,
        axes={
            "rho_clock": rhos,
            "drift_tuned": [False, True],
            "s": seeds_for(quick, quick_count=5, full_count=15),
        },
        n=N,
        protocol="timebounded",
        timing=("synchronous", {"delta": DELTA, "min_delay": DELTA}),
    )


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E2",
        title="drift-tuned vs naive timeout calculus (the paper's fix)",
        claim=(
            "Without the (1+rho) drift inflation the universal protocol "
            "violates connector security (CS3) under worst-case clocks for "
            "any drift above m/H; with the paper's fine-tuning it never "
            "does."
        ),
        columns=[
            "rho", "calculus", "runs", "bob_paid", "violations",
            "connector_harmed", "violated_props",
        ],
    )
    sweep.raise_any()
    for rho in sweep.distinct("rho_clock"):
        for drift_tuned in (False, True):
            records = sweep.select(rho_clock=rho, drift_tuned=drift_tuned)
            props: set = set()
            for record in records:
                props |= set(record["props"])
            result.add_row(
                rho=rho,
                calculus="tuned" if drift_tuned else "naive",
                runs=len(records),
                bob_paid=fraction(r["bob_paid"] for r in records),
                violations=fraction(r["bad"] for r in records),
                connector_harmed=fraction(r["harmed"] for r in records),
                violated_props=",".join(sorted(props)) or "-",
            )
    result.note(
        f"worst case: all delays = Delta={DELTA}, processing pinned at "
        f"epsilon={EPSILON}, margin={MARGIN}, escrow {FAST_ESCROW} fast by "
        f"(1+rho); predicted naive-failure threshold rho = "
        f"{MARGIN:.3g}/H_1."
    )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
