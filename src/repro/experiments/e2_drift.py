"""E2 — the clock-drift fine-tuning ablation.

The paper's stated delta over prior work: "the synchronous solutions of
[Interledger] and [Herlihy et al.] do not consider clock drift".  We
run the *same* protocol with the **naive** timeout calculus (windows =
real-time bounds + margin, no (1+ρ) inflation) and with the paper's
**drift-tuned** calculus, under worst-case conditions: all delays at
the bound Δ, processing pinned at ε, and one mid-path escrow whose
clock runs maximally fast.

Analysis: the fast escrow ``e_1`` measures its window ``a_1`` on a
clock running at ``1+ρ``, so the real window is ``a_1/(1+ρ)``; the
certificate legitimately arrives after real time ``H_1``.  The naive
window ``H_1 + m`` therefore fails once ``ρ > m / H_1`` — with the
margin ``m = ε/2`` and ``n = 4`` hops that threshold is ρ ≈ 0.0024,
so every swept drift above zero breaks it.  The failure mode is the
nasty one: the drifting escrow refunds upstream while its downstream
peer already paid out — the connector between them ends out of pocket
(CS3), exactly the incident the paper's fine-tuning prevents.  The
tuned window ``(1+ρ)·H_1 + m`` never fails.
"""

from __future__ import annotations

from ..clocks import extremal_clock
from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.timing import Synchronous
from ..properties import check_definition1
from .harness import ExperimentResult, fraction, seeds_for

DELTA = 1.0
EPSILON = 0.05
MARGIN = EPSILON / 2.0
N = 4
FAST_ESCROW = "e1"


def _session(rho: float, drift_tuned: bool, seed: int) -> PaymentSession:
    topo = PaymentTopology.linear(N, payment_id=f"e2-{rho}-{drift_tuned}-{seed}")
    clocks = {FAST_ESCROW: extremal_clock(rho, fast=True)}
    return PaymentSession(
        topo,
        "timebounded",
        # All delays exactly at the bound: the adversarially slow network
        # the calculus must survive.
        Synchronous(DELTA, min_delay=DELTA),
        seed=seed,
        clocks=clocks,
        protocol_options={
            "epsilon": EPSILON,
            "rho": rho,
            "drift_tuned": drift_tuned,
            "margin": MARGIN,
            "processing_floor": EPSILON,  # pin processing at its bound
        },
    )


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E2",
        title="drift-tuned vs naive timeout calculus (the paper's fix)",
        claim=(
            "Without the (1+rho) drift inflation the universal protocol "
            "violates connector security (CS3) under worst-case clocks for "
            "any drift above m/H; with the paper's fine-tuning it never "
            "does."
        ),
        columns=[
            "rho", "calculus", "runs", "bob_paid", "violations",
            "connector_harmed", "violated_props",
        ],
    )
    rhos = [0.0, 0.005, 0.02, 0.05] if quick else [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
    for rho in rhos:
        for drift_tuned in (False, True):
            paid, bad, harmed, props = [], [], [], set()
            for s in seeds_for(quick, quick_count=5, full_count=15):
                session = _session(rho, drift_tuned, seed * 100 + s)
                outcome = session.run()
                report = check_definition1(outcome)
                paid.append(outcome.bob_paid)
                bad.append(not report.all_ok)
                # A connector is monetarily harmed when her position has
                # a negative component and is not the success position —
                # she paid downstream without being paid upstream.  (If
                # she is still waiting, the T violation covers her; the
                # money damage is what this column surfaces.)
                harmed.append(
                    any(
                        any(u < 0 for u in outcome.position_delta(c).values())
                        and not outcome.in_success_position(c)
                        for c in outcome.topology.connectors()
                    )
                )
                props |= {v.property_id.value for v in report.violations()}
            result.add_row(
                rho=rho,
                calculus="tuned" if drift_tuned else "naive",
                runs=len(paid),
                bob_paid=fraction(paid),
                violations=fraction(bad),
                connector_harmed=fraction(harmed),
                violated_props=",".join(sorted(props)) or "-",
            )
    result.note(
        f"worst case: all delays = Delta={DELTA}, processing pinned at "
        f"epsilon={EPSILON}, margin={MARGIN}, escrow {FAST_ESCROW} fast by "
        f"(1+rho); predicted naive-failure threshold rho = "
        f"{MARGIN:.3g}/H_1."
    )
    return result


__all__ = ["run"]
