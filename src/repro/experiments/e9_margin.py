"""E9 (ablation) — the timeout margin trade-off.

The window calculus takes a free parameter ``margin``: extra slack added
to every ``a_i`` / ``d_i``.  The trade-off it buys:

* **robustness** — how much unmodelled delay/processing variance the
  run survives (E2 showed margin = 0 fails even at ρ = 0 because the
  strict window boundary is hit exactly);
* **capital lock-up** — on the failure path (Byzantine Bob withholding
  χ), deposits stay escrowed until the windows expire, so every unit of
  margin directly lengthens the refund latency and the a-priori
  termination bound.

This is the kind of deployment decision a paper leaves implicit and a
library must surface.
"""

from __future__ import annotations

from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.timing import Synchronous
from ..properties import check_definition1
from .harness import ExperimentResult, fraction, seeds_for

DELTA = 1.0
EPSILON = 0.05
N = 3


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E9",
        title="ablation: timeout margin vs refund latency",
        claim=(
            "larger margins change nothing on the happy path but "
            "linearly delay refunds (and the termination bound) when the "
            "certificate never comes."
        ),
        columns=[
            "margin", "a0_window", "term_bound", "honest_ok",
            "honest_end", "refund_end",
        ],
    )
    margins = [0.025, 0.25, 1.0, 4.0] if quick else [0.025, 0.1, 0.25, 1.0, 2.0, 4.0, 8.0]
    for margin in margins:
        honest_ok, honest_end, refund_end = [], [], []
        a0 = bound = None
        for s in seeds_for(quick, quick_count=5, full_count=12):
            topo = PaymentTopology.linear(N, payment_id=f"e9-{margin}-{s}")
            session = PaymentSession(
                topo, "timebounded", Synchronous(DELTA),
                seed=seed * 100 + s, rho=0.01,
                protocol_options={"epsilon": EPSILON, "margin": margin},
            )
            outcome = session.run()
            params = session.protocol_instance.params
            a0 = params.a_i(0)
            bound = params.global_termination_bound()
            honest_ok.append(
                check_definition1(outcome, termination_bound=bound).all_ok
            )
            honest_end.append(outcome.end_time)
            # Failure path: Bob withholds chi; refunds must wait out the
            # full windows.
            topo2 = PaymentTopology.linear(N, payment_id=f"e9b-{margin}-{s}")
            session2 = PaymentSession(
                topo2, "timebounded", Synchronous(DELTA),
                seed=seed * 100 + s, rho=0.01,
                byzantine={topo2.bob: "bob_never_signs"},
                protocol_options={"epsilon": EPSILON, "margin": margin},
            )
            outcome2 = session2.run()
            refund_end.append(outcome2.end_time)
        result.add_row(
            margin=margin,
            a0_window=a0,
            term_bound=bound,
            honest_ok=fraction(honest_ok),
            honest_end=max(honest_end),
            refund_end=max(refund_end),
        )
    result.note(
        f"n={N}, delta={DELTA}, epsilon={EPSILON}, rho=1%; refund_end is "
        "the worst-case completion time when Bob never signs."
    )
    return result


__all__ = ["run"]
