"""E9 (ablation) — the timeout margin trade-off.

The window calculus takes a free parameter ``margin``: extra slack added
to every ``a_i`` / ``d_i``.  The trade-off it buys:

* **robustness** — how much unmodelled delay/processing variance the
  run survives (E2 showed margin = 0 fails even at ρ = 0 because the
  strict window boundary is hit exactly);
* **capital lock-up** — on the failure path (Byzantine Bob withholding
  χ), deposits stay escrowed until the windows expire, so every unit of
  margin directly lengthens the refund latency and the a-priori
  termination bound.

This is the kind of deployment decision a paper leaves implicit and a
library must surface.
"""

from __future__ import annotations

from typing import Any, Dict

from ..properties import check_definition1
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, fraction, payment_session, seeds_for

DELTA = 1.0
EPSILON = 0.05
N = 3


def trial(spec) -> Dict[str, Any]:
    protocol_options = {"epsilon": EPSILON, "margin": spec.opt("margin")}
    # Happy path: everyone honest.
    session = payment_session(spec, protocol_options=protocol_options)
    outcome = session.run()
    params = session.protocol_instance.params
    bound = params.global_termination_bound()
    # Failure path: Bob withholds chi; refunds must wait out the full
    # windows.  (Bob is the last customer on the linear path.)
    session2 = payment_session(
        spec,
        protocol_options=protocol_options,
        payment_id=f"refund-{'-'.join(str(c) for c in spec.coords)}",
        byzantine={f"c{spec.opt('n')}": "bob_never_signs"},
    )
    outcome2 = session2.run()
    return {
        "a0": params.a_i(0),
        "bound": bound,
        "honest_ok": check_definition1(
            outcome, termination_bound=bound
        ).all_ok,
        "honest_end": outcome.end_time,
        "refund_end": outcome2.end_time,
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    margins = (
        [0.025, 0.25, 1.0, 4.0]
        if quick
        else [0.025, 0.1, 0.25, 1.0, 2.0, 4.0, 8.0]
    )
    return SweepSpec.grid(
        "E9",
        trial,
        seed,
        axes={
            "margin": margins,
            "s": seeds_for(quick, quick_count=5, full_count=12),
        },
        n=N,
        protocol="timebounded",
        timing=("synchronous", {"delta": DELTA}),
        rho=0.01,
    )


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E9",
        title="ablation: timeout margin vs refund latency",
        claim=(
            "larger margins change nothing on the happy path but "
            "linearly delay refunds (and the termination bound) when the "
            "certificate never comes."
        ),
        columns=[
            "margin", "a0_window", "term_bound", "honest_ok",
            "honest_end", "refund_end",
        ],
    )
    sweep.raise_any()
    for margin in sweep.distinct("margin"):
        records = sweep.select(margin=margin)
        result.add_row(
            margin=margin,
            a0_window=records[-1]["a0"],
            term_bound=records[-1]["bound"],
            honest_ok=fraction(r["honest_ok"] for r in records),
            honest_end=max(r["honest_end"] for r in records),
            refund_end=max(r["refund_end"] for r in records),
        )
    result.note(
        f"n={N}, delta={DELTA}, epsilon={EPSILON}, rho=1%; refund_end is "
        "the worst-case completion time when Bob never signs."
    )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
