"""E3 — Theorem 2: impossibility under partial synchrony.

The proof quantifies over protocols; an experiment quantifies over a
*family*.  We take the natural family the theorem defeats:

* the time-bounded protocol instantiated with any assumed bound
  Δ' ∈ {1, 10, 100} — the adversary withholds certificates until after
  the protocol's entire timeout horizon (legal pre-GST), so Bob has
  irrevocably issued χ while the refund cascade runs: **customer
  security or liveness fails**;
* the *no-timeout* variant (escrows wait for χ forever) — the adversary
  withholds χ and the run never terminates: **termination fails**.

Either horn kills Definition 1; that disjunction is the theorem.  For
contrast, the last row runs the Definition 2 protocol (Theorem 3) under
the same adversary: it aborts safely and terminates.
"""

from __future__ import annotations

from ..core.params import TimingAssumptions, compute_params
from ..core.session import PaymentSession
from ..core.topology import PaymentTopology
from ..net.adversary import CertificateWithholdingAdversary
from ..net.timing import PartialSynchrony
from ..properties import check_definition1, check_definition2
from .harness import ExperimentResult

EPSILON = 0.05
N = 3


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E3",
        title="no eventually-terminating protocol under partial synchrony (Theorem 2)",
        claim=(
            "For every timeout choice, a legal partial-synchrony adversary "
            "forces a Definition 1 violation (safety/liveness for finite "
            "timeouts; termination for none).  The weak protocol survives."
        ),
        columns=[
            "protocol", "assumed_delta", "gst", "chi_issued", "bob_paid",
            "def_ok", "violated",
        ],
    )
    assumed_deltas = [1.0, 10.0] if quick else [1.0, 10.0, 100.0]
    for assumed in assumed_deltas:
        params = compute_params(
            N, TimingAssumptions(delta=assumed, epsilon=EPSILON, rho=0.0)
        )
        # Adaptive adversary: pick GST beyond the whole timeout horizon.
        gst = 4.0 * params.global_termination_bound()
        topo = PaymentTopology.linear(N, payment_id=f"e3-{assumed}")
        session = PaymentSession(
            topo,
            "timebounded",
            PartialSynchrony(gst=gst, delta=1.0),
            adversary=CertificateWithholdingAdversary(),
            seed=seed,
            protocol_options={"delta": assumed, "epsilon": EPSILON},
        )
        outcome = session.run()
        report = check_definition1(outcome)
        result.add_row(
            protocol="timebounded",
            assumed_delta=assumed,
            gst=gst,
            chi_issued=outcome.chi_issued(),
            bob_paid=outcome.bob_paid,
            def_ok=report.all_ok,
            violated=",".join(
                sorted(v.property_id.value for v in report.violations())
            ) or "-",
        )
    # The no-timeout horn: money stays escrowed, nobody terminates.
    topo = PaymentTopology.linear(N, payment_id="e3-notimeout")
    session = PaymentSession(
        topo,
        "timebounded",
        PartialSynchrony(gst=5_000.0, delta=1.0),
        adversary=CertificateWithholdingAdversary(),
        seed=seed,
        horizon=20_000.0,
        protocol_options={"delta": 1.0, "epsilon": EPSILON, "no_timeout": True},
    )
    outcome = session.run()
    report = check_definition1(outcome)
    result.add_row(
        protocol="timebounded/no-timeout",
        assumed_delta="inf",
        gst=5_000.0,
        chi_issued=outcome.chi_issued(),
        bob_paid=outcome.bob_paid,
        def_ok=report.all_ok,
        violated=",".join(sorted(v.property_id.value for v in report.violations()))
        or "-",
    )
    # Contrast: the Definition 2 protocol under the same adversary.
    topo = PaymentTopology.linear(N, payment_id="e3-weak")
    session = PaymentSession(
        topo,
        "weak",
        PartialSynchrony(gst=500.0, delta=1.0),
        adversary=CertificateWithholdingAdversary(),
        seed=seed,
        horizon=50_000.0,
        protocol_options={
            "tm": "trusted",
            "patience_setup": 50.0,
            "patience_decision": 50.0,
        },
    )
    outcome = session.run()
    report = check_definition2(outcome, patient=False)
    result.add_row(
        protocol="weak (Def 2)",
        assumed_delta="-",
        gst=500.0,
        chi_issued=outcome.chi_issued(),
        bob_paid=outcome.bob_paid,
        def_ok=report.all_ok,
        violated=",".join(sorted(v.property_id.value for v in report.violations()))
        or "-",
    )
    result.note(
        "the adversary holds every chi message as long as the timing model "
        "allows; GST is chosen adaptively per protocol instance."
    )
    return result


__all__ = ["run"]
