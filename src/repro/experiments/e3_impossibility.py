"""E3 — Theorem 2: impossibility under partial synchrony.

The proof quantifies over protocols; an experiment quantifies over a
*family*.  We take the natural family the theorem defeats:

* the time-bounded protocol instantiated with any assumed bound
  Δ' ∈ {1, 10, 100} — the adversary withholds certificates until after
  the protocol's entire timeout horizon (legal pre-GST), so Bob has
  irrevocably issued χ while the refund cascade runs: **customer
  security or liveness fails**;
* the *no-timeout* variant (escrows wait for χ forever) — the adversary
  withholds χ and the run never terminates: **termination fails**.

Either horn kills Definition 1; that disjunction is the theorem.  For
contrast, the last row runs the Definition 2 protocol (Theorem 3) under
the same adversary: it aborts safely and terminates.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.params import TimingAssumptions, compute_params
from ..properties import check_definition1, check_definition2
from ..runtime import SweepResult, SweepSpec, resolve_executor
from .harness import ExperimentResult, payment_session

EPSILON = 0.05
N = 3


def trial(spec) -> Dict[str, Any]:
    from ..net.adversary import CertificateWithholdingAdversary

    variant = spec.opt("variant")
    if variant == "bounded":
        assumed = spec.opt("assumed_delta")
        params = compute_params(
            N, TimingAssumptions(delta=assumed, epsilon=EPSILON, rho=0.0)
        )
        # Adaptive adversary: pick GST beyond the whole timeout horizon.
        gst = 4.0 * params.global_termination_bound()
        session = payment_session(
            spec,
            timing=("partial", {"gst": gst, "delta": 1.0}),
            adversary=CertificateWithholdingAdversary(),
            protocol_options={"delta": assumed, "epsilon": EPSILON},
        )
        outcome = session.run()
        report = check_definition1(outcome)
    elif variant == "no_timeout":
        gst = spec.opt("gst")
        session = payment_session(
            spec, adversary=CertificateWithholdingAdversary()
        )
        outcome = session.run()
        report = check_definition1(outcome)
    elif variant == "weak":
        gst = spec.opt("gst")
        session = payment_session(
            spec, adversary=CertificateWithholdingAdversary()
        )
        outcome = session.run()
        report = check_definition2(outcome, patient=False)
    else:  # pragma: no cover - builder/trial mismatch
        raise ValueError(f"unknown E3 variant: {variant!r}")
    return {
        "gst": gst,
        "chi_issued": outcome.chi_issued(),
        "bob_paid": outcome.bob_paid,
        "def_ok": report.all_ok,
        "violated": ",".join(
            sorted(v.property_id.value for v in report.violations())
        )
        or "-",
    }


def build_sweep(quick: bool = True, seed: int = 0) -> SweepSpec:
    sweep = SweepSpec(sweep_id="E3")
    assumed_deltas = [1.0, 10.0] if quick else [1.0, 10.0, 100.0]
    for assumed in assumed_deltas:
        sweep.add(
            trial,
            seed,
            ("bounded", assumed),
            variant="bounded",
            assumed_delta=assumed,
            protocol_label="timebounded",
            n=N,
            protocol="timebounded",
            payment_id=f"e3-{assumed}",
        )
    # The no-timeout horn: money stays escrowed, nobody terminates.
    sweep.add(
        trial,
        seed,
        ("no_timeout",),
        variant="no_timeout",
        assumed_delta="inf",
        protocol_label="timebounded/no-timeout",
        n=N,
        protocol="timebounded",
        timing=("partial", {"gst": 5_000.0, "delta": 1.0}),
        gst=5_000.0,
        horizon=20_000.0,
        protocol_options={"delta": 1.0, "epsilon": EPSILON, "no_timeout": True},
        payment_id="e3-notimeout",
    )
    # Contrast: the Definition 2 protocol under the same adversary.
    sweep.add(
        trial,
        seed,
        ("weak",),
        variant="weak",
        assumed_delta="-",
        protocol_label="weak (Def 2)",
        n=N,
        protocol="weak",
        timing=("partial", {"gst": 500.0, "delta": 1.0}),
        gst=500.0,
        horizon=50_000.0,
        protocol_options={
            "tm": "trusted",
            "patience_setup": 50.0,
            "patience_decision": 50.0,
        },
        payment_id="e3-weak",
    )
    return sweep


def aggregate(sweep: SweepResult) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E3",
        title="no eventually-terminating protocol under partial synchrony (Theorem 2)",
        claim=(
            "For every timeout choice, a legal partial-synchrony adversary "
            "forces a Definition 1 violation (safety/liveness for finite "
            "timeouts; termination for none).  The weak protocol survives."
        ),
        columns=[
            "protocol", "assumed_delta", "gst", "chi_issued", "bob_paid",
            "def_ok", "violated",
        ],
    )
    sweep.raise_any()
    for record in sweep:
        result.add_row(
            protocol=record.spec.opt("protocol_label"),
            assumed_delta=record.spec.opt("assumed_delta"),
            gst=record["gst"],
            chi_issued=record["chi_issued"],
            bob_paid=record["bob_paid"],
            def_ok=record["def_ok"],
            violated=record["violated"],
        )
    result.note(
        "the adversary holds every chi message as long as the timing model "
        "allows; GST is chosen adaptively per protocol instance."
    )
    return result


def run(quick: bool = True, seed: int = 0, executor=None) -> ExperimentResult:
    return aggregate(resolve_executor(executor).run(build_sweep(quick, seed)))


__all__ = ["aggregate", "build_sweep", "run", "trial"]
