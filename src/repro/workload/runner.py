"""Run one workload cell: many payments interleaved on one shared kernel.

A *cell* is one (protocol, offered load) point of a workload sweep.  It
schedules ``count`` payment arrivals on a single
:class:`~repro.sim.kernel.Simulator`, admits each against the shared
:class:`~repro.workload.substrate.LiquiditySubstrate`, and launches the
admitted ones as concurrent :class:`~repro.core.session.PaymentSession`s
— each behind its own :class:`~repro.sim.view.SessionView`, so sessions
share the event queue and the global clock but keep private RNG streams
and traces.  Events of different payments genuinely interleave; a
payment can fail at admission because a sibling's reservations hold the
pool (``liquidity_failed``), and that is the *only* new failure mode —
every launched payment keeps the paper's per-payment guarantees.

Per-payment determinism
-----------------------
Payment *k*'s seed is ``derive_seed(cell_seed, k)`` and its RNG streams
live on its own view, so its delays/clocks/choices are a pure function
of the cell spec — independent of which siblings are in flight.  A
one-payment cell at a uniform arrival (time 0) therefore reproduces the
equivalent solo campaign trial's record values exactly.

Per-payment records
-------------------
Each payment yields the campaign trial's columns (``bob_paid`` ...
``def1_ok`` / ``def2_ok``) plus ``arrival_time`` and
``liquidity_failed``.  Two columns read differently under concurrency:
``latency`` is the payment's own span (finalize time − arrival), and
``events`` counts *kernel* events executed during the payment's
lifetime — a contention measure that includes sibling activity (it
equals the solo event count when the payment runs alone).  A
liquidity-failed payment records ``def1_ok = def2_ok = None`` (the
guarantee checkers never ran — it never launched), zero latency and
traffic, and still-true ``ledgers_ok`` (nothing was put at risk).

Each launched payment is finalized either when all its participants
terminated (checked after every kernel event, like the solo stop
condition) or at its own deadline ``arrival + horizon`` (a low-priority
kernel event, so the per-payment horizon stays inclusive exactly like
``Simulator.run(until=...)``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..errors import ExperimentError, WorkloadError
from ..runtime.spec import TrialSpec, derive_seed
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..sim.trace import TraceRecorder
from ..sim.view import SessionView
from .arrivals import arrival_times
from .spec import sample_topologies
from .substrate import LiquiditySubstrate

#: Deadline finalizers run after every ordinary event at their instant
#: (ordinary priorities are <= MONITOR = 40), keeping the per-payment
#: horizon inclusive like the solo path's ``run(until=horizon)``.
DEADLINE_PRIORITY = 90


class _LivePayment:
    """Book-keeping for one launched, not-yet-finalized payment."""

    __slots__ = (
        "index",
        "arrival",
        "deadline",
        "topology",
        "session",
        "pending",
        "baseline",
        "deadline_event",
        "done",
        "faults",
        "kind",
        "arena",
    )


def run_workload_cell(
    *,
    protocol: str,
    count: int,
    load: float,
    timing: Any = "sync",
    adversary: str = "none",
    topology_mix: Sequence[Sequence[Any]] = (("linear-3", 1.0),),
    arrivals: str = "uniform",
    liquidity: int = 250,
    horizon: Optional[float] = None,
    rho: float = 0.0,
    protocol_options: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    trace_level: Optional[str] = None,
    audit: Optional[str] = None,
    payment_label: str = "workload",
) -> Dict[str, Any]:
    """Run ``count`` payments at offered load ``load`` on one kernel.

    ``timing`` accepts a registry name or a primitive descriptor;
    ``protocol_options`` overrides are merged over the protocol's
    campaign defaults; ``horizon`` is the *per-payment* deadline span
    (protocol default when ``None``).  ``audit="every-op"`` re-checks
    every payment ledger's conservation audit and the substrate's
    global conservation after *every* mutating ledger operation — the
    invariant-harness mode; it changes no behavior, only verifies.

    Returns the cell summary with the per-payment value dicts under
    ``"payments"`` (arrival order — payment ``k``'s record is entry
    ``k``).
    """
    from ..core.session import PaymentSession, SessionArena
    from ..net.adversary import CrashRestartAdversary
    from ..scenarios.registry import (
        make_adversary,
        protocol_defaults,
        timing_descriptor,
    )
    from ..sim.faults import FaultInjector
    from ..scenarios.trial import _timing_for, _topology_for
    from ..sim.trace import CHECKER_KINDS
    from ..verification.properties import definition_profile, property_columns

    if count < 1:
        raise WorkloadError(f"payment count must be >= 1, got {count}")
    descriptor = timing_descriptor(timing) if isinstance(timing, str) else timing
    timing_model = _timing_for(descriptor)
    defaults = protocol_defaults(protocol)
    if horizon is None:
        horizon = defaults.horizon
    merged_options = dict(defaults.options)
    merged_options.update(protocol_options or {})
    trace_kinds = None if trace_level == "full" else CHECKER_KINDS
    profile = definition_profile(protocol)

    # Cell-level randomness: arrivals and topology sampling draw from
    # named streams of the cell seed, never from any session's streams.
    # Topology kinds come from the same pure helper payment_specs uses,
    # so a payment record's `topology` option is the kind it actually ran.
    registry = RngRegistry(seed)
    times = arrival_times(arrivals, count, load, registry.stream("workload.arrivals"))
    kinds = sample_topologies(seed, count, topology_mix)

    kernel = Simulator(seed=seed)
    substrate = LiquiditySubstrate(liquidity)
    results: List[Optional[Dict[str, Any]]] = [None] * count
    live: List[_LivePayment] = []
    finished = 0
    audit_ops = 0
    # Retired session arenas by topology kind: a payment that finished
    # *quiescent* — every participant terminated and no delivery still
    # in flight — returns its view/network/ledger shells here, and a
    # later arrival of the same shape resets them instead of
    # rebuilding.  A payment cut off by its deadline (or with messages
    # still in the queue) never recycles: its stale events may yet
    # fire, and they must keep hitting the old world's tables, exactly
    # as they did before arenas existed.
    arenas: Dict[str, List[SessionArena]] = {}

    observer = None
    if audit == "every-op":

        def observer(ledger, op: str) -> None:
            nonlocal audit_ops
            audit_ops += 1
            if not ledger.audit_ok():
                raise WorkloadError(
                    f"ledger {ledger.name!r} broke conservation after "
                    f"{op!r} at t={kernel.now:.6g}"
                )
            if not substrate.conserved():
                raise WorkloadError(
                    f"substrate broke global conservation after {op!r} "
                    f"on {ledger.name!r} at t={kernel.now:.6g}"
                )

    elif audit is not None:
        raise WorkloadError(f"unknown audit mode {audit!r}; use 'every-op'")

    def _liquidity_failed_values(index: int, topology) -> Dict[str, Any]:
        return {
            "bob_paid": False,
            "chi_issued": False,
            "committed": False,
            "aborted": False,
            "all_terminated": True,
            "ledgers_ok": True,
            "latency": 0.0,
            "messages": 0,
            "events": 0,
            "leaves": topology.leaves,
            "depth": topology.depth,
            "definition": profile.definition,
            "def1_ok": None,
            "def2_ok": None,
            "violated_properties": [],
            "arrival_time": times[index],
            "liquidity_failed": True,
        }

    def _finalize(
        entry: _LivePayment, end_time: float, events: int, quiescent: bool = False
    ) -> None:
        nonlocal finished
        outcome = entry.session.collect(end_time=end_time, events_executed=events)
        substrate.retire(entry.topology.payment_id, entry.session.env.ledgers)
        decisions = outcome.decision_kinds_issued()
        values: Dict[str, Any] = {
            "bob_paid": outcome.bob_paid,
            "chi_issued": outcome.chi_issued(),
            "committed": "commit" in decisions,
            "aborted": "abort" in decisions,
            "all_terminated": outcome.all_participants_terminated(),
            "ledgers_ok": all(outcome.ledger_audits.values()),
            "latency": end_time - entry.arrival,
            "messages": outcome.messages_sent,
            "events": events,
            "leaves": entry.topology.leaves,
            "depth": entry.topology.depth,
        }
        if entry.faults is not None:
            # Recovery columns appear only on crash-restart cells, so
            # every pre-existing workload record stays byte-identical.
            values["crashed"] = entry.faults.crashed_at is not None
            values["crash_point"] = entry.faults.point
            values["crash_downtime"] = entry.faults.downtime
            values["recovered_at"] = entry.faults.recovered_at
        values.update(
            property_columns(
                outcome,
                protocol=protocol,
                timing=descriptor,
                protocol_options=merged_options,
            )
        )
        values["arrival_time"] = entry.arrival
        values["liquidity_failed"] = False
        results[entry.index] = values
        entry.done = True
        finished += 1
        if quiescent:
            stats = entry.session.env.network.stats
            if stats.delivered == stats.sent:
                arenas.setdefault(entry.kind, []).append(entry.arena)

    def _expire(entry: _LivePayment) -> None:
        if entry.done:  # pragma: no cover - deadline events are cancelled
            return
        # The deadline tick itself is not one of the payment's events.
        events = kernel.executed_events - entry.baseline - 1
        _finalize(entry, entry.deadline, events)

    def _arrive(index: int) -> None:
        nonlocal finished
        payment_id = f"{payment_label}-p{index}"
        topology = _topology_for(kinds[index], payment_id)
        if not substrate.admit(topology):
            results[index] = _liquidity_failed_values(index, topology)
            finished += 1
            return
        payment_seed = derive_seed(seed, index)
        free = arenas.get(kinds[index])
        arena = free.pop() if free else SessionArena()
        if arena.sim is not None:
            # Populated arena: the session resets the arena's own view
            # (new seed, new trace) during its build.
            view = arena.sim
        else:
            view = SessionView(
                kernel,
                seed=payment_seed,
                trace=(
                    TraceRecorder(keep=trace_kinds)
                    if trace_kinds is not None
                    else TraceRecorder()
                ),
            )
        fund = substrate.funding_hook()
        if observer is not None:
            inner_fund = fund

            def fund(topology, ledgers, _fund=inner_fund):
                for ledger in ledgers.values():
                    ledger.observer = observer
                _fund(topology, ledgers)

        # Fresh adversary per payment: campaign trials reuse one cached
        # instance with reset-between-runs, which is only sound because
        # solo runs never overlap; workload sessions do.
        payment_adversary = make_adversary(adversary, topology)
        injector = None
        if isinstance(payment_adversary, CrashRestartAdversary):
            injector = FaultInjector(
                payment_adversary.victim,
                payment_adversary.point,
                payment_adversary.downtime,
            )
        session = PaymentSession(
            topology,
            protocol,
            timing_model,
            adversary=payment_adversary,
            seed=payment_seed,
            rho=rho,
            horizon=horizon,
            protocol_options=dict(merged_options),
            trace_kinds=trace_kinds,
            sim=view,
            funding=fund,
            faults=injector,
            arena=arena,
        )
        participants = session.launch()
        entry = _LivePayment()
        entry.kind = kinds[index]
        entry.arena = arena
        entry.index = index
        entry.arrival = times[index]
        entry.deadline = times[index] + horizon
        entry.topology = topology
        entry.session = session
        entry.pending = list(participants)
        entry.baseline = kernel.executed_events
        entry.done = False
        entry.faults = injector
        entry.deadline_event = kernel.schedule_at(
            entry.deadline, _expire, entry,
            priority=DEADLINE_PRIORITY, label="workload.deadline",
        )
        live.append(entry)

    def _check(sim) -> bool:
        prune = False
        for entry in live:
            if entry.done:
                prune = True
                continue
            pending = entry.pending
            while pending and pending[-1].terminated:
                pending.pop()
            if not pending:
                kernel.cancel(entry.deadline_event)
                _finalize(
                    entry,
                    kernel.now,
                    kernel.executed_events - entry.baseline,
                    quiescent=True,
                )
                prune = True
        if prune:
            live[:] = [entry for entry in live if not entry.done]
        return finished >= count

    for index in range(count):
        kernel.schedule_at(times[index], _arrive, index, label="workload.arrival")
    kernel.add_stop_condition(_check)
    kernel.run(until=times[-1] + horizon)
    # Deadlines all lie within the run horizon, so nothing should be
    # left; finalize defensively rather than return a partial cell.
    for entry in live:
        if not entry.done:  # pragma: no cover - defensive
            _finalize(
                entry, entry.deadline, kernel.executed_events - entry.baseline
            )
    live.clear()

    failures = sum(1 for values in results if values["liquidity_failed"])
    return {
        "payments": results,
        "count": count,
        "load": load,
        "liquidity_failures": failures,
        "liquidity_failure_rate": failures / count,
        "conserved": substrate.conserved(),
        "in_flight_at_end": substrate.in_flight_payments(),
        "pool_capacity": liquidity,
        "pools": substrate.pool_count,
        "makespan": kernel.now,
        "kernel_events": kernel.executed_events,
        "audited_ops": audit_ops,
    }


def workload_cell(spec: TrialSpec) -> Dict[str, Any]:
    """Run one workload cell; pure function of its trial spec."""
    return run_workload_cell(
        protocol=spec.opt("protocol"),
        count=spec.opt("count"),
        load=spec.opt("load"),
        timing=spec.opt("timing"),
        adversary=spec.opt("adversary", "none"),
        topology_mix=spec.opt("topology_mix"),
        arrivals=spec.opt("arrivals", "uniform"),
        liquidity=spec.opt("liquidity"),
        horizon=spec.opt("horizon"),
        rho=spec.opt("rho", 0.0),
        protocol_options=dict(spec.opt("protocol_options") or {}),
        seed=spec.seed,
        trace_level=spec.opt("trace_level", None),
        audit=spec.opt("audit", None),
        payment_label="-".join(str(c) for c in spec.coords) or "workload",
    )


def workload_payment(spec: TrialSpec) -> Dict[str, Any]:
    """Marker trial fn for per-payment records (never executed).

    The workload CLI persists one record per *payment* under this
    reference — expanded in the parent process from the cell results —
    so analysis tools see per-payment rows.  The records are expansion
    artifacts; re-running one directly is not meaningful.
    """
    raise ExperimentError(
        "workload payment records are expanded from cell results by the "
        "workload CLI; re-run the workload instead of this record"
    )


__all__ = [
    "DEADLINE_PRIORITY",
    "run_workload_cell",
    "workload_cell",
    "workload_payment",
]
