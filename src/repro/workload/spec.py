"""Declarative workload specs compiled onto the runtime sweep machinery.

A :class:`WorkloadSpec` is the CLI's (and tests') view of a workload:
protocol and offered-load axes, an arrival process, a topology mix, and
the substrate's pool capacity.  ``compile()`` turns it into one
:class:`~repro.runtime.spec.SweepSpec` **cell** per (protocol, load)
point — cells are the unit of execution (each runs its own kernel +
substrate), so ``--jobs N`` fans cells out over a process pool exactly
like campaign trials, and the cell seed discipline
(``derive_seed(master, sweep_id, protocol, load)``) makes every cell —
and via ``derive_seed(cell_seed, k)`` every payment — a pure function
of the spec.

Persisted records are per *payment*, not per cell: the CLI expands each
cell's results into one record per payment (:func:`payment_specs` gives
their specs) before writing.  Resume therefore works on a
complete-cell-prefix discipline (:func:`diff_workload`): the longest
prefix of the record file that matches whole expected cells is kept
byte-identical, and every other cell re-runs — a cell is deterministic,
so re-running a half-written one reproduces the same records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ScenarioError, WorkloadError
from ..runtime.aggregate import TrialRecord
from ..runtime.persist import record_to_dict
from ..runtime.spec import SweepSpec, TrialSpec, derive_seed
from .arrivals import ARRIVAL_PROCESSES

#: Import reference of the cell trial fn (what executors run).
TRIAL_REF = "repro.workload.runner:workload_cell"

#: Import reference stamped on per-payment records (expansion artifacts).
PAYMENT_REF = "repro.workload.runner:workload_payment"

#: Default pool capacity: ~2 concurrent linear-3 payments per escrow
#: (a linear-3 grant is 100–102 units), so moderate loads see real
#: contention without starving everything.
DEFAULT_LIQUIDITY = 250

DEFAULT_COUNT = 100
DEFAULT_LOADS = (0.02, 0.08)


def normalize_mix(
    topology_mix: Sequence[Sequence[Any]],
) -> List[Tuple[str, float]]:
    """Validate a mix into ``[(kind, positive weight), ...]`` pairs."""
    entries: List[Tuple[str, float]] = []
    for entry in topology_mix:
        kind, weight = entry
        weight = float(weight)
        if weight <= 0.0:
            raise WorkloadError(
                f"topology-mix weight must be positive, got {kind}:{weight}"
            )
        entries.append((str(kind), weight))
    if not entries:
        raise WorkloadError("topology mix must name at least one topology")
    return entries


def sample_topologies(
    seed: int, count: int, topology_mix: Sequence[Sequence[Any]]
) -> List[str]:
    """The topology kind of each payment, sampled from the cell's mix.

    Draws come from the cell seed's dedicated ``workload.mix`` stream —
    a pure function of (seed, count, mix), shared by the runner (to
    build the payments) and by :func:`payment_specs` (to reconstruct
    per-payment record specs without running anything).  A single-kind
    mix draws nothing, so adding a second kind never perturbs other
    streams.
    """
    from ..sim.rng import RngRegistry

    entries = normalize_mix(topology_mix)
    if len(entries) == 1:
        return [entries[0][0]] * count
    stream = RngRegistry(seed).stream("workload.mix")
    total_weight = sum(weight for _kind, weight in entries)
    kinds: List[str] = []
    for _ in range(count):
        draw = stream.random() * total_weight
        acc = 0.0
        chosen = entries[-1][0]
        for kind, weight in entries:
            acc += weight
            if draw < acc:
                chosen = kind
                break
        kinds.append(chosen)
    return kinds


def parse_topology_mix(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse ``kind[:weight],...`` (e.g. ``linear-3:2,tree-2:1``).

    Weights default to 1 and are relative (they need not sum to one).
    """
    entries: List[Tuple[str, float]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, raw_weight = part.partition(":")
        kind = kind.strip()
        try:
            weight = float(raw_weight) if sep else 1.0
        except ValueError:
            raise WorkloadError(
                f"bad topology-mix weight in {part!r}"
            ) from None
        if not kind or weight <= 0.0:
            raise WorkloadError(
                f"bad topology-mix entry {part!r}; expected kind[:weight] "
                "with a positive weight"
            )
        entries.append((kind, weight))
    if not entries:
        raise WorkloadError("topology mix must name at least one topology")
    return tuple(entries)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload: axes, arrival process, mix, and substrate sizing."""

    protocols: Tuple[str, ...] = ("timebounded", "htlc", "weak", "certified")
    loads: Tuple[float, ...] = DEFAULT_LOADS
    count: int = DEFAULT_COUNT
    timing: str = "sync"
    adversary: str = "none"
    topology_mix: Tuple[Tuple[str, float], ...] = (("linear-3", 1.0),)
    arrivals: str = "uniform"
    liquidity: int = DEFAULT_LIQUIDITY
    horizon: Optional[float] = None
    rho: float = 0.0
    seed: int = 0
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    audit: Optional[str] = None
    sweep_id: str = "workload"

    def validate(self) -> None:
        from ..scenarios.registry import (
            PROTOCOLS,
            TIMINGS,
            check_adversary,
            check_topology,
        )

        if not self.protocols:
            raise WorkloadError("workload needs at least one protocol")
        for protocol in self.protocols:
            if protocol not in PROTOCOLS:
                raise WorkloadError(
                    f"unknown protocol {protocol!r}; "
                    f"available: {', '.join(PROTOCOLS)}"
                )
        if not self.loads:
            raise WorkloadError("workload needs at least one offered load")
        for load in self.loads:
            if not (load > 0.0):
                raise WorkloadError(f"offered load must be positive, got {load!r}")
        if self.count < 1:
            raise WorkloadError(f"payment count must be >= 1, got {self.count}")
        if self.timing not in TIMINGS:
            raise WorkloadError(
                f"unknown timing {self.timing!r}; available: {', '.join(TIMINGS)}"
            )
        try:
            # Accepts registry names and pattern families alike, so a
            # workload can sweep ``crash-restart-<point>-d<D>`` cells.
            check_adversary(self.adversary)
        except ScenarioError as exc:
            raise WorkloadError(str(exc)) from None
        for kind, _weight in self.topology_mix:
            check_topology(kind)
        if self.arrivals not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"unknown arrival process {self.arrivals!r}; "
                f"available: {', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.liquidity < 1:
            raise WorkloadError(
                f"pool capacity must be >= 1, got {self.liquidity}"
            )
        for protocol, options in self.overrides.items():
            if protocol not in self.protocols:
                raise WorkloadError(
                    f"override target {protocol!r} is not in this workload's "
                    "protocols"
                )
            from ..scenarios.registry import protocol_defaults

            known = protocol_defaults(protocol).known_options
            for option in options:
                if option not in known:
                    raise WorkloadError(
                        f"unknown option {protocol}.{option}; "
                        f"known: {', '.join(known)}"
                    )

    def cell_options(self, protocol: str) -> Dict[str, Any]:
        """The option payload one (protocol, load) cell carries."""
        from ..scenarios.registry import protocol_defaults, timing_descriptor

        defaults = protocol_defaults(protocol)
        merged = dict(defaults.options)
        merged.update(self.overrides.get(protocol, {}))
        options: Dict[str, Any] = {
            "protocol": protocol,
            "timing_name": self.timing,
            "timing": timing_descriptor(self.timing),
            "adversary": self.adversary,
            "topology_mix": [list(entry) for entry in self.topology_mix],
            "count": self.count,
            "arrivals": self.arrivals,
            "liquidity": self.liquidity,
            "horizon": self.horizon if self.horizon is not None else defaults.horizon,
            "rho": self.rho,
            "protocol_options": merged,
        }
        if self.audit is not None:
            options["audit"] = self.audit
        return options

    def compile(self) -> SweepSpec:
        """One cell per (protocol, load), in axis order."""
        self.validate()
        sweep = SweepSpec(sweep_id=self.sweep_id)
        for protocol in self.protocols:
            for load in self.loads:
                sweep.add(
                    TRIAL_REF,
                    self.seed,
                    (protocol, load),
                    load=load,
                    **self.cell_options(protocol),
                )
        return sweep


def payment_specs(cell: TrialSpec) -> List[TrialSpec]:
    """The per-payment specs a cell's record expands into.

    Payment ``k`` gets coords ``cell.coords + (k,)`` and seed
    ``derive_seed(cell.seed, k)`` — the exact seed the runner hands the
    session, so a persisted record's seed column *is* the payment seed.
    Options carry the compact per-payment facts analysis groups by
    (``flatten_record`` turns option keys into CSV columns): the
    protocol and offered load, the payment's *sampled* topology kind —
    reconstructed with :func:`sample_topologies`, the same pure function
    the runner draws from — and the scenario knobs.  The cell's full
    payload (timing descriptor, merged protocol options, ...) is not
    repeated ``count`` times; it is recoverable from the spec that
    produced the run.
    """
    count = int(cell.opt("count"))
    kinds = sample_topologies(cell.seed, count, cell.opt("topology_mix"))
    common = {
        "protocol": cell.opt("protocol"),
        "load": cell.opt("load"),
        "timing_name": cell.opt("timing_name"),
        "adversary": cell.opt("adversary"),
        "arrivals": cell.opt("arrivals"),
        "liquidity": cell.opt("liquidity"),
    }
    return [
        TrialSpec(
            fn=PAYMENT_REF,
            coords=cell.coords + (index,),
            seed=derive_seed(cell.seed, index),
            options={**common, "topology": kinds[index]},
        )
        for index in range(count)
    ]


def expand_cell_record(cell_record: TrialRecord) -> List[TrialRecord]:
    """Per-payment records from one successful cell record."""
    payments = cell_record.values["payments"]
    specs = payment_specs(cell_record.spec)
    if len(payments) != len(specs):
        raise WorkloadError(
            f"cell {cell_record.spec.coords!r} returned {len(payments)} "
            f"payments, expected {len(specs)}"
        )
    # wall_seconds stays 0.0: per-payment wall time is meaningless (the
    # cell runs as one kernel) and zeroing it keeps the record bytes a
    # pure function of the spec.
    return [
        TrialRecord(spec=spec, values=values)
        for spec, values in zip(specs, payments)
    ]


@dataclass
class WorkloadDiff:
    """Resume plan: byte-identical kept prefix + cells still to run."""

    kept: List[TrialRecord]
    kept_bytes: int
    completed_cells: int
    missing: SweepSpec


def records_byte_length(records: Sequence[TrialRecord]) -> int:
    """On-disk length of ``records`` as the writer would serialize them.

    ``record_to_dict`` has a fixed key order and the writer uses
    compact separators with default ASCII escaping, so re-encoding
    reproduces the persisted bytes exactly.
    """
    return sum(
        len(json.dumps(record_to_dict(record), separators=(",", ":")) + "\n")
        for record in records
    )


def diff_workload(
    sweep: SweepSpec, records: Sequence[TrialRecord]
) -> WorkloadDiff:
    """Diff a compiled workload against already-persisted payment records.

    Walks the expected per-payment sequence cell by cell; the longest
    prefix of ``records`` consisting of *whole*, matching, error-free
    cells is kept (and its byte length computed for the writer's
    truncation point).  Every other cell — half-written, mismatched, or
    simply not yet run — goes into ``missing`` and re-runs in full.
    """
    kept: List[TrialRecord] = []
    missing = SweepSpec(sweep_id=sweep.sweep_id)
    position = 0
    prefix_intact = True
    completed = 0
    for cell in sweep.trials:
        expected = payment_specs(cell)
        matched = False
        if prefix_intact:
            chunk = list(records[position:position + len(expected)])
            matched = len(chunk) == len(expected) and all(
                record.ok
                and record.spec.fn == spec.fn
                and tuple(record.spec.coords) == spec.coords
                and record.spec.seed == spec.seed
                and dict(record.spec.options) == spec.options
                for record, spec in zip(chunk, expected)
            )
        if matched:
            kept.extend(chunk)
            position += len(expected)
            completed += 1
        else:
            prefix_intact = False
            missing.trials.append(cell)
    return WorkloadDiff(
        kept=kept,
        kept_bytes=records_byte_length(kept),
        completed_cells=completed,
        missing=missing,
    )


__all__ = [
    "DEFAULT_COUNT",
    "DEFAULT_LIQUIDITY",
    "DEFAULT_LOADS",
    "PAYMENT_REF",
    "TRIAL_REF",
    "WorkloadDiff",
    "WorkloadSpec",
    "diff_workload",
    "expand_cell_record",
    "normalize_mix",
    "parse_topology_mix",
    "payment_specs",
    "records_byte_length",
    "sample_topologies",
]
