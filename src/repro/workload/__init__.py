"""Concurrent multi-payment workloads on a shared liquidity substrate.

The paper (and every campaign trial) studies one payment at a time;
this package studies *contention*: an open-loop stream of payments
arriving on one shared kernel, drawing funding from bounded per-escrow
liquidity pools, so a payment can fail for liquidity reasons the paper
never models — while every payment that does launch must still keep
its protocol's Definition 1/2 guarantees.

Layers (see each module's docstring):

* :mod:`~repro.workload.arrivals` — open-loop arrival processes;
* :mod:`~repro.workload.substrate` — the shared liquidity pools with a
  globally checkable conservation invariant;
* :mod:`~repro.workload.runner` — one cell: N interleaved sessions on
  one kernel, each behind a :class:`~repro.sim.view.SessionView`;
* :mod:`~repro.workload.spec` — declarative specs, per-payment record
  expansion, and the complete-cell-prefix resume diff;
* :mod:`~repro.workload.cli` — ``python -m repro workload``.
"""

from .arrivals import ARRIVAL_PROCESSES, arrival_times
from .runner import run_workload_cell, workload_cell, workload_payment
from .spec import (
    DEFAULT_LIQUIDITY,
    PAYMENT_REF,
    TRIAL_REF,
    WorkloadSpec,
    diff_workload,
    expand_cell_record,
    normalize_mix,
    parse_topology_mix,
    payment_specs,
    sample_topologies,
)
from .substrate import LiquiditySubstrate

__all__ = [
    "ARRIVAL_PROCESSES",
    "DEFAULT_LIQUIDITY",
    "LiquiditySubstrate",
    "PAYMENT_REF",
    "TRIAL_REF",
    "WorkloadSpec",
    "arrival_times",
    "diff_workload",
    "expand_cell_record",
    "normalize_mix",
    "parse_topology_mix",
    "payment_specs",
    "run_workload_cell",
    "sample_topologies",
    "workload_cell",
    "workload_payment",
]
