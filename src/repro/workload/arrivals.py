"""Open-loop arrival processes for workload payments.

A workload offers payments to the substrate at a configured rate
(*offered load* — payments per simulated time unit), independent of how
fast previous payments complete.  Two processes are supported:

``uniform``
    Deterministic, evenly spaced arrivals: payment *k* arrives at
    ``k / rate``.  The first payment arrives at time 0, which is what
    makes a one-payment workload the exact analogue of a solo campaign
    trial (same start time, same horizon window).

``poisson``
    A Poisson process of intensity ``rate``: i.i.d. exponential gaps,
    drawn from the cell's dedicated RNG stream so arrival times are a
    pure function of the cell seed.

Both return times in non-decreasing order, ready to be scheduled on the
shared kernel.
"""

from __future__ import annotations

from math import log as _log
from typing import List

from ..errors import WorkloadError

#: Registered arrival-process names, in documentation order.
ARRIVAL_PROCESSES = ("uniform", "poisson")


def arrival_times(process: str, count: int, rate: float, rng) -> List[float]:
    """Arrival times for ``count`` payments at offered load ``rate``.

    ``rng`` is a :class:`random.Random`-compatible stream (only the
    Poisson process draws from it).  When the stream offers batched
    raw-uniform draws (:meth:`~repro.sim.rng.RngStream.fill_uniforms`),
    the whole exponential-gap schedule is derived from one batch —
    ``-log(1 - u) / rate`` is exactly CPython's ``expovariate(rate)``,
    so the times are bit-identical to the scalar loop either way.
    """
    if count < 0:
        raise WorkloadError(f"payment count must be >= 0, got {count}")
    if not (rate > 0.0):
        raise WorkloadError(f"offered load must be positive, got {rate!r}")
    if process == "uniform":
        return [k / rate for k in range(count)]
    if process == "poisson":
        times: List[float] = []
        t = 0.0
        fill = getattr(rng, "fill_uniforms", None)
        if fill is not None:
            for u in fill(count):
                t += -_log(1.0 - u) / rate
                times.append(t)
        else:
            for _ in range(count):
                t += rng.expovariate(rate)
                times.append(t)
        return times
    raise WorkloadError(
        f"unknown arrival process {process!r}; "
        f"available: {', '.join(ARRIVAL_PROCESSES)}"
    )


__all__ = ["ARRIVAL_PROCESSES", "arrival_times"]
