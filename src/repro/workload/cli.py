"""``python -m repro workload`` — concurrent payments under contention.

Usage::

    python -m repro workload --protocols htlc,weak --loads 0.02,0.08 \
        --payments 200 --liquidity 250 --jobs 2
    python -m repro workload --topology-mix linear-3:2,tree-2:1 \
        --arrivals poisson --out runs/wl
    python -m repro workload --out runs/wl --resume --loads 0.02,0.08,0.2
    python -m repro workload --payments 50 --audit   # per-op invariants

Each (protocol, load) point is one **cell**: ``--payments`` arrivals on
one shared kernel drawing funding from one shared liquidity substrate
(see :mod:`repro.workload.runner`).  Cells fan out over ``--jobs``
worker processes like campaign trials, and the table — and, with
``--out``, every persisted byte of ``records.jsonl`` — is identical
whatever the job count.

``--out DIR`` persists one record per *payment* (coords = cell coords +
payment index, seed = the payment's own derived seed), so
``python -m repro analyze DIR`` slices workload records exactly like
campaign records; they add the ``arrival_time`` and ``liquidity_failed``
columns.  ``--resume`` keeps the longest prefix of whole, matching
cells byte-identical and re-runs the rest — growing the load axis or
repairing an interrupted run both work the campaign way.

``--assert-monotone`` exits non-zero unless, for every protocol, the
liquidity-failure rate is non-decreasing in offered load — the
substrate's sanity property CI pins.
"""

from __future__ import annotations

import argparse
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import PersistenceError, ScenarioError, WorkloadError
from ..runtime import (
    RecordWriter,
    ScanResult,
    default_jobs,
    resolve_executor,
    scan_records,
)
from ..scenarios.cli import _collect_overrides, _csv, _csv_floats, _parse_set
from .spec import (
    DEFAULT_COUNT,
    DEFAULT_LIQUIDITY,
    DEFAULT_LOADS,
    WorkloadSpec,
    diff_workload,
    expand_cell_record,
    parse_topology_mix,
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted non-empty sequence."""
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil without math
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _cell_stats(payments: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Table row ingredients for one cell's per-payment values."""
    launched = [p for p in payments if not p["liquidity_failed"]]
    failures = len(payments) - len(launched)
    ok = sum(
        1
        for p in launched
        if (p["def1_ok"] if p["def1_ok"] is not None else p["def2_ok"])
    )
    latencies = sorted(p["latency"] for p in launched)
    span = max(
        (p["arrival_time"] + p["latency"] for p in launched), default=0.0
    )
    return {
        "payments": len(payments),
        "liq_failed": failures,
        "liq_rate": failures / len(payments) if payments else 0.0,
        "def_ok": ok / len(launched) if launched else 1.0,
        "p50": _percentile(latencies, 0.50) if latencies else 0.0,
        "p95": _percentile(latencies, 0.95) if latencies else 0.0,
        "throughput": len(launched) / span if span > 0.0 else 0.0,
    }


def render_workload_table(
    rows: Sequence[Tuple[Tuple[Any, ...], Dict[str, Any]]]
) -> str:
    """Fixed-width table: one row per (protocol, load) cell."""
    header = (
        f"{'protocol':<12} {'load':>8} {'payments':>8} {'liq_fail':>8} "
        f"{'liq_rate':>8} {'def_ok':>7} {'p50':>9} {'p95':>9} {'thruput':>9}"
    )
    lines = [header, "-" * len(header)]
    for coords, stats in rows:
        protocol, load = coords[0], coords[1]
        lines.append(
            f"{protocol:<12} {load:>8g} {stats['payments']:>8d} "
            f"{stats['liq_failed']:>8d} {stats['liq_rate']:>8.3f} "
            f"{stats['def_ok']:>7.3f} {stats['p50']:>9.3f} "
            f"{stats['p95']:>9.3f} {stats['throughput']:>9.4f}"
        )
    return "\n".join(lines)


def check_monotone_liquidity(
    rows: Sequence[Tuple[Tuple[Any, ...], Dict[str, Any]]]
) -> List[str]:
    """Violation messages where failure rate decreases as load grows."""
    by_protocol: Dict[Any, List[Tuple[float, float]]] = {}
    for coords, stats in rows:
        by_protocol.setdefault(coords[0], []).append(
            (float(coords[1]), stats["liq_rate"])
        )
    problems = []
    for protocol, points in by_protocol.items():
        points.sort()
        for (lo_load, lo_rate), (hi_load, hi_rate) in zip(points, points[1:]):
            if hi_rate < lo_rate:
                problems.append(
                    f"{protocol}: liquidity-failure rate fell from "
                    f"{lo_rate:.3f} at load {lo_load:g} to {hi_rate:.3f} "
                    f"at load {hi_load:g}"
                )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro workload",
        description=(
            "Run concurrent multi-payment workloads on a shared "
            "liquidity substrate."
        ),
    )
    parser.add_argument(
        "--protocols",
        type=_csv,
        default=None,
        metavar="P1,P2",
        help="protocol axis (default: timebounded,htlc,weak,certified)",
    )
    parser.add_argument(
        "--loads",
        type=_csv_floats,
        default=None,
        metavar="L1,L2",
        help=(
            "offered-load axis: payment arrivals per time unit; each "
            f"value is one cell (default: {','.join(str(l) for l in DEFAULT_LOADS)})"
        ),
    )
    parser.add_argument(
        "--payments",
        type=int,
        default=DEFAULT_COUNT,
        metavar="N",
        help=f"payments per cell (default: {DEFAULT_COUNT})",
    )
    parser.add_argument(
        "--timing",
        default="sync",
        metavar="T",
        help="timing model, a campaign registry name (default: sync)",
    )
    parser.add_argument(
        "--adversary",
        default="none",
        metavar="A",
        help="adversary, a campaign registry name (default: none)",
    )
    parser.add_argument(
        "--topology-mix",
        default="linear-3",
        metavar="K1:W1,K2:W2",
        help=(
            "topology sampling mix with relative weights, e.g. "
            "linear-3:2,tree-2:1 (default: linear-3)"
        ),
    )
    parser.add_argument(
        "--arrivals",
        choices=("uniform", "poisson"),
        default="uniform",
        help="arrival process (default: uniform; first arrival at t=0)",
    )
    parser.add_argument(
        "--liquidity",
        type=int,
        default=DEFAULT_LIQUIDITY,
        metavar="U",
        help=(
            "units endowed per (escrow, asset) liquidity pool "
            f"(default: {DEFAULT_LIQUIDITY})"
        ),
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        metavar="H",
        help="per-payment deadline span (default: protocol campaign default)",
    )
    parser.add_argument(
        "--rho", type=float, default=0.0, metavar="R",
        help="clock-drift bound for every payment (default: 0)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default: 0)"
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        type=_parse_set,
        action="append",
        default=None,
        metavar="PROTO.OPT=VAL",
        help="per-protocol option override, repeatable (campaign syntax)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "re-check every ledger's conservation audit and the "
            "substrate's global conservation after every mutating "
            "ledger operation (slow; the invariant-harness mode)"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes over cells (default: $REPRO_JOBS or 1; "
            "records are byte-identical whatever N)"
        ),
    )
    parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        metavar="C",
        help="cells per worker batch for parallel runs",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help=(
            "stream one record per payment to DIR (records.jsonl + "
            "records.csv + manifest.json), sliceable with "
            "`python -m repro analyze DIR`"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --out DIR: keep the longest prefix of whole matching "
            "cells byte-identical and run only the rest (grows axes; "
            "repairs interrupted runs)"
        ),
    )
    parser.add_argument(
        "--assert-monotone",
        action="store_true",
        help=(
            "exit non-zero unless the liquidity-failure rate is "
            "monotone non-decreasing in offered load for every protocol"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the rendered table to FILE",
    )
    return parser


def cli_flags() -> List[str]:
    """Every long flag the parser accepts (for docs-consistency checks)."""
    flags: List[str] = []
    for action in build_parser()._actions:
        flags.extend(
            opt for opt in action.option_strings if opt.startswith("--")
        )
    return sorted(set(flags) - {"--help"})


def workload_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    if args.resume and not args.out:
        parser.error("--resume grows a persisted workload and needs --out DIR")

    try:
        spec = WorkloadSpec(
            protocols=tuple(
                args.protocols
                if args.protocols is not None
                else ("timebounded", "htlc", "weak", "certified")
            ),
            loads=tuple(args.loads if args.loads is not None else DEFAULT_LOADS),
            count=args.payments,
            timing=args.timing,
            adversary=args.adversary,
            topology_mix=parse_topology_mix(args.topology_mix),
            arrivals=args.arrivals,
            liquidity=args.liquidity,
            horizon=args.horizon,
            rho=args.rho,
            seed=args.seed,
            overrides=_collect_overrides(args.overrides),
            audit="every-op" if args.audit else None,
        )
        sweep = spec.compile()
    except (WorkloadError, ScenarioError) as exc:
        parser.error(str(exc))

    scan = None
    diff = None
    if args.resume:
        try:
            scan = scan_records(args.out)
            diff = diff_workload(sweep, scan.records)
        except PersistenceError as exc:
            parser.error(str(exc))
        to_run = diff.missing
    else:
        to_run = sweep

    # Per-payment values per cell, keyed by cell coords, for the table.
    cell_payments: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    if diff is not None:
        for record in diff.kept:
            cell_payments.setdefault(tuple(record.spec.coords[:-1]), []).append(
                record.values
            )

    errors = []
    unconserved = []

    def absorb(cell_record) -> None:
        """Fold one finished cell into the table (and flag problems)."""
        if cell_record.error is not None:
            errors.append(cell_record)
            return
        if not cell_record.values.get("conserved", False):
            unconserved.append(cell_record.spec.coords)
        cell_payments[tuple(cell_record.spec.coords)] = list(
            cell_record.values["payments"]
        )

    t0 = time.perf_counter()
    with resolve_executor(jobs=jobs, chunksize=args.chunksize) as executor:
        if args.out:
            trimmed = (
                ScanResult(
                    records=diff.kept,
                    manifest=scan.manifest,
                    jsonl_bytes=diff.kept_bytes,
                )
                if diff is not None
                else None
            )
            try:
                writer = RecordWriter(
                    args.out, sweep_id=sweep.sweep_id, resume_from=trimmed
                )
            except OSError as exc:
                parser.error(f"cannot write records to {args.out}: {exc}")
            except PersistenceError as exc:
                parser.error(str(exc))

            def sink(cell_record) -> None:
                absorb(cell_record)
                if cell_record.error is None:
                    for payment_record in expand_cell_record(cell_record):
                        writer.write(payment_record)

            with writer:
                executor.run(to_run, sink=sink)
                writer.close(
                    wall_seconds=time.perf_counter() - t0,
                    jobs=jobs,
                    extra={"kind": "workload", "payments_per_cell": spec.count},
                )
        else:
            executor.run(to_run, sink=absorb)
    elapsed = time.perf_counter() - t0

    if errors:
        first = errors[0]
        print(first.error)
        print(
            f"error: {len(errors)}/{len(to_run)} workload cells failed; "
            f"first: {first.spec.coords!r}"
        )
        return 1
    if unconserved:
        print(
            "error: liquidity conservation failed in cells: "
            + ", ".join(repr(c) for c in unconserved)
        )
        return 1

    rows = [
        (cell.coords, _cell_stats(cell_payments[cell.coords]))
        for cell in sweep.trials
        if cell.coords in cell_payments
    ]
    table = render_workload_table(rows)
    print(table)
    if diff is not None:
        footer = (
            f"({len(to_run)} cells run, {diff.completed_cells} reused from "
            f"{args.out}, in {elapsed:.1f}s, jobs={jobs})"
        )
    else:
        footer = (
            f"({len(sweep)} cells x {spec.count} payments in "
            f"{elapsed:.1f}s, jobs={jobs})"
        )
    print(footer)
    if args.out:
        print(f"wrote {writer.count} records to {args.out}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
        print(f"wrote {args.output}")
    if args.assert_monotone:
        problems = check_monotone_liquidity(rows)
        if problems:
            for problem in problems:
                print(f"monotonicity violation: {problem}")
            return 2
        print("liquidity-failure rate is monotone in offered load")
    return 0


__all__ = [
    "build_parser",
    "check_monotone_liquidity",
    "cli_flags",
    "render_workload_table",
    "workload_main",
]
