"""The shared liquidity substrate: bounded hub balances under contention.

The paper's model funds every payment out of thin air — each trial
mints exactly the value its funding plan needs, so a payment can never
fail for lack of funds.  Production hubs are not like that: an escrow's
customers hold *bounded* balances, and value locked by one in-flight
payment is unavailable to the next.  :class:`LiquiditySubstrate` models
exactly that contention, and nothing else:

* one liquidity **pool** per ``(escrow name, asset)``, lazily endowed
  with ``capacity`` units the first time a payment touches it (payments
  built from the same topology registry share escrow names — ``e0``,
  ``e1``, ... — so concurrent payments genuinely compete);
* :meth:`admit` — at a payment's arrival, *reserve* every funding grant
  against the pools, all-or-nothing.  A shortfall on any grant rolls
  back the reservations already made and reports a **liquidity
  failure**: the payment never launches, exactly as a hub would refuse
  a transfer it cannot cover;
* :meth:`funding_hook` — the admitted payment's
  :data:`~repro.core.session.FundingHook`: each reserved grant is
  settled out of its pool and minted onto the payment's own ledger,
  and recorded as *in flight*;
* :meth:`retire` — when the payment finalizes (however it ended), its
  drawn value returns to the pools.  The payment's ledgers are closed
  books (value never leaves a ledger), so what was drawn is exactly
  what comes back — the paper's escrow-security property, lifted to
  the substrate.

Conservation is global and checkable at any instant
(:meth:`conserved`): per asset, everything ever endowed equals pool
balances (available + reserved) plus value in flight.  Reservations
ride on :class:`~repro.ledger.account.Account`'s reserve/release/settle
semantics, so double-spending an admission is structurally impossible —
the second settle of the same reservation raises before any books
change.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import InsufficientFunds, WorkloadError
from ..ledger.account import Account
from ..ledger.asset import Amount

#: (escrow name, asset) — the identity of one liquidity pool.
PoolKey = Tuple[str, str]


class LiquiditySubstrate:
    """Per-(escrow, asset) liquidity pools shared by a workload's payments.

    Parameters
    ----------
    capacity:
        Units endowed to each pool on first touch.  The single knob of
        the contention model: smaller capacity (or higher offered load)
        means more overlapping reservations and more admit failures.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise WorkloadError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pools: Dict[PoolKey, Account] = {}
        self._endowed: Dict[str, int] = {}
        self._in_flight: Dict[str, List[Tuple[PoolKey, int]]] = {}
        #: Admission outcomes, for workload summaries.
        self.admitted = 0
        self.rejected = 0

    # -- pools -----------------------------------------------------------

    def pool(self, escrow: str, asset: str) -> Account:
        """The pool for ``(escrow, asset)``, endowed on first touch."""
        key = (escrow, asset)
        acct = self._pools.get(key)
        if acct is None:
            acct = Account(f"{escrow}:{asset}")
            acct.credit(Amount(asset, self.capacity))
            self._endowed[asset] = self._endowed.get(asset, 0) + self.capacity
            self._pools[key] = acct
        return acct

    @property
    def pool_count(self) -> int:
        return len(self._pools)

    def available(self, escrow: str, asset: str) -> int:
        """Spendable units currently in one pool."""
        return self.pool(escrow, asset).balance(asset).units

    # -- the payment life-cycle ------------------------------------------

    def admit(self, topology) -> bool:
        """Reserve every funding grant of ``topology``, all-or-nothing.

        Returns ``False`` — with every reservation rolled back — when
        any pool cannot cover its grant: the liquidity failure.
        """
        made: List[Tuple[Account, Amount]] = []
        for escrow, grants in topology.funding_plan().items():
            for _customer, amt in grants:
                pool = self.pool(escrow, amt.asset)
                try:
                    pool.reserve(amt)
                except InsufficientFunds:
                    for acct, held in made:
                        acct.release(held)
                    self.rejected += 1
                    return False
                made.append((pool, amt))
        self.admitted += 1
        return True

    def funding_hook(self):
        """The admitted payment's funding hook (draw reserves → mint).

        Must follow a successful :meth:`admit` for the same topology:
        each grant's reservation is settled out of its pool and the
        same value minted onto the payment's ledger, tracked in flight
        under the topology's ``payment_id`` until :meth:`retire`.
        """

        def fund(topology, ledgers) -> None:
            drawn = self._in_flight.setdefault(topology.payment_id, [])
            for escrow, grants in topology.funding_plan().items():
                for customer, amt in grants:
                    self.pool(escrow, amt.asset).settle(amt)
                    # Record the draw before minting: a per-op observer
                    # fires inside mint and must already see the value
                    # accounted as in flight.
                    drawn.append(((escrow, amt.asset), amt.units))
                    ledgers[escrow].mint(customer, amt)

        return fund

    def retire(self, payment_id: str, ledgers) -> None:
        """Return a finalized payment's drawn value to the pools.

        The payment's per-escrow ledgers are closed books — every unit
        minted at funding is still on them (accounts or held locks),
        whatever the payment's outcome — so the drawn units go back to
        their pools exactly.  A ledger that lost value would be a
        conservation bug; it is surfaced here rather than absorbed.
        """
        drawn = self._in_flight.pop(payment_id, [])
        for (escrow, asset), units in drawn:
            ledger = ledgers.get(escrow)
            if ledger is not None and not ledger.audit_ok():
                raise WorkloadError(
                    f"payment {payment_id!r}: ledger {escrow!r} failed its "
                    "conservation audit at retirement"
                )
            self._pools[(escrow, asset)].credit(Amount(asset, units))

    # -- conservation -----------------------------------------------------

    def in_flight_total(self, asset: str) -> int:
        """Units of ``asset`` currently drawn by live payments."""
        return sum(
            units
            for drawn in self._in_flight.values()
            for (_escrow, a), units in drawn
            if a == asset
        )

    def in_flight_payments(self) -> int:
        """Number of admitted payments not yet retired."""
        return len(self._in_flight)

    def conserved(self) -> bool:
        """Global conservation: endowed == pools (avail + reserved) + in flight.

        Holds at every instant of a workload — between any two substrate
        or ledger operations — not just at the end of the run.
        """
        totals: Dict[str, int] = {}
        for (_escrow, asset), acct in self._pools.items():
            totals[asset] = (
                totals.get(asset, 0)
                + acct.balance(asset).units
                + acct.reserved(asset).units
            )
        for drawn in self._in_flight.values():
            for (_escrow, asset), units in drawn:
                totals[asset] = totals.get(asset, 0) + units
        return all(
            totals.get(asset, 0) == endowed
            for asset, endowed in self._endowed.items()
        ) and set(totals) <= set(self._endowed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LiquiditySubstrate(capacity={self.capacity}, "
            f"pools={len(self._pools)}, in_flight={len(self._in_flight)})"
        )


__all__ = ["LiquiditySubstrate", "PoolKey"]
