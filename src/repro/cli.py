"""Command-line entry point: run the reproduction's experiments.

Usage::

    python -m repro                    # all experiments, quick mode
    python -m repro E1 E3 --full       # selected experiments, full sweeps
    python -m repro --jobs 4           # fan trials out over 4 processes
    REPRO_JOBS=4 python -m repro E2    # same, via the environment
    repro-experiments --list           # ids + one-line descriptions
    python -m repro campaign ...       # scenario-matrix campaigns
                                       # (see repro.scenarios.cli)
    python -m repro analyze DIR ...    # slice persisted campaign records
                                       # (see repro.analysis.cli)
    python -m repro workload ...       # concurrent payments on a shared
                                       # liquidity substrate
                                       # (see repro.workload.cli)

Every experiment is a declarative sweep (see :mod:`repro.runtime`):
trials are pure functions of their spec, so ``--jobs N`` runs them on a
process pool and still produces byte-identical tables to a serial run.
``--full`` widens the sweeps (more seeds, sizes, and drift points); the
default quick mode keeps the whole evaluation in the tens of seconds.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS, experiment_doc, render_table
from .runtime import default_jobs, resolve_executor


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        # The scenario-matrix subcommand keeps its own flag set; the
        # plain invocation stays positional for backward compatibility.
        from .scenarios.cli import campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "analyze":
        # Post-hoc analytics over a persisted --out directory.
        from .analysis.cli import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "workload":
        # Concurrent multi-payment workloads on a shared liquidity
        # substrate (see repro.workload.cli).
        from .workload.cli import workload_main

        return workload_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Feasibility of Cross-Chain "
            "Payment with Success Guarantees' (SPAA 2020)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full sweeps (slower, more seeds/sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for sweep trials (default: $REPRO_JOBS or 1; "
            "results are byte-identical whatever N)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write all rendered tables to FILE (markdown-friendly)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(EXPERIMENTS):
            print(f"{exp_id}: {experiment_doc(exp_id)}")
        return 0

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")

    selected = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")

    sections = []
    # One executor for the whole evaluation: the worker pool spins up
    # once and is reused by every experiment's sweep.
    with resolve_executor(jobs=jobs) as executor:
        for exp_id in selected:
            t0 = time.perf_counter()
            result = EXPERIMENTS[exp_id](
                quick=not args.full, seed=args.seed, executor=executor
            )
            elapsed = time.perf_counter() - t0
            table = render_table(result)
            footer = f"({exp_id} completed in {elapsed:.1f}s, jobs={jobs})"
            print(table)
            print(footer)
            print()
            sections.append(f"{table}\n{footer}\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            mode = "full" if args.full else "quick"
            handle.write(
                f"# Experiment results ({mode} mode, seed={args.seed})\n\n"
            )
            for section in sections:
                handle.write("```\n" + section + "```\n\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
