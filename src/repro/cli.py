"""Command-line entry point: run the reproduction's experiments.

Usage::

    python -m repro                  # all experiments, quick mode
    python -m repro E1 E3 --full     # selected experiments, full sweeps
    repro-experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS, render_table


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Feasibility of Cross-Chain "
            "Payment with Success Guarantees' (SPAA 2020)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXP",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full sweeps (slower, more seeds/sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write all rendered tables to FILE (markdown-friendly)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, fn in sorted(EXPERIMENTS.items()):
            doc = (fn.__module__ or "").rsplit(".", 1)[-1]
            print(f"{exp_id}: {doc}")
        return 0

    selected = [e.upper() for e in args.experiments] or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}")

    sections = []
    for exp_id in selected:
        t0 = time.perf_counter()
        result = EXPERIMENTS[exp_id](quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - t0
        table = render_table(result)
        print(table)
        print(f"({exp_id} completed in {elapsed:.1f}s)")
        print()
        sections.append(f"{table}\n({exp_id} completed in {elapsed:.1f}s)\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            mode = "full" if args.full else "quick"
            handle.write(
                f"# Experiment results ({mode} mode, seed={args.seed})\n\n"
            )
            for section in sections:
                handle.write("```\n" + section + "```\n\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
