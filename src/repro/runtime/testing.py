"""Importable trial functions for exercising the runtime itself.

Trial functions must be resolvable by ``module:qualname`` from worker
processes, so the runtime's own test/benchmark trials live here rather
than inside test modules (which are not importable under every
multiprocessing start method).
"""

from __future__ import annotations

from typing import Any, Dict

from .spec import TrialSpec


def echo_trial(spec: TrialSpec) -> Dict[str, Any]:
    """Return the spec's seed/coords/options — pure plumbing check."""
    return {
        "seed": spec.seed,
        "coords": spec.coords,
        **dict(spec.options),
    }


def failing_trial(spec: TrialSpec) -> Dict[str, Any]:
    """Raise unless ``options['ok']`` is truthy — error-path check."""
    if not spec.opt("ok"):
        raise ValueError(f"trial {spec.coords!r} was told to fail")
    return {"survived": True}


def spin_trial(spec: TrialSpec) -> Dict[str, Any]:
    """Burn CPU deterministically — speedup measurements.

    ``options['iterations']`` controls the amount of work; the returned
    checksum depends only on the spec, so serial and parallel runs stay
    comparable.
    """
    total = 0
    for i in range(int(spec.opt("iterations", 100_000))):
        total = (total * 31 + i + spec.seed) % 1_000_000_007
    return {"checksum": total}


def scalar_trial(spec: TrialSpec) -> Any:
    """Return a bare int — exercises the dict-contract check."""
    return spec.seed


__all__ = ["echo_trial", "failing_trial", "scalar_trial", "spin_trial"]
