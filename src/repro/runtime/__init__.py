"""The sweep-execution runtime.

Three layers, assembled bottom-up:

* :mod:`~repro.runtime.spec` — declarative :class:`TrialSpec` /
  :class:`SweepSpec` descriptions of Monte-Carlo sweeps, with
  collision-free per-trial seeds via :func:`derive_seed`;
* :mod:`~repro.runtime.executor` — pluggable :class:`Executor`
  strategies (:class:`SerialExecutor`, process-pool
  :class:`ParallelExecutor`) that run a sweep and always return
  records in spec order, keeping parallel runs byte-identical to
  serial ones;
* :mod:`~repro.runtime.aggregate` — :class:`TrialRecord` /
  :class:`SweepResult` containers the experiments reduce into their
  result tables;
* :mod:`~repro.runtime.persist` — streamed JSONL/CSV persistence for
  trial records (:class:`RecordWriter` as an executor ``sink``) and
  :func:`load_sweep_result` to reload and re-aggregate without
  re-running any trial.

Every experiment module in :mod:`repro.experiments` is a thin
``build_sweep`` + trial function + ``aggregate`` triple on top of this
package; the CLI's ``--jobs`` flag and the ``REPRO_JOBS`` environment
variable choose the executor.
"""

from .aggregate import SweepResult, TrialError, TrialRecord
from .executor import (
    Executor,
    JOBS_ENV_VAR,
    ParallelExecutor,
    SerialExecutor,
    default_jobs,
    resolve_executor,
    run_sweep,
    run_trial,
)
from .persist import (
    RecordWriter,
    ScanResult,
    iter_records,
    load_sweep_result,
    read_manifest,
    record_from_dict,
    record_to_dict,
    scan_records,
    write_sweep_result,
)
from .spec import SweepSpec, TrialSpec, derive_seed, resolve_trial_fn, trial_ref

__all__ = [
    "Executor",
    "JOBS_ENV_VAR",
    "ParallelExecutor",
    "RecordWriter",
    "ScanResult",
    "SerialExecutor",
    "SweepResult",
    "SweepSpec",
    "TrialError",
    "TrialRecord",
    "TrialSpec",
    "default_jobs",
    "derive_seed",
    "iter_records",
    "load_sweep_result",
    "read_manifest",
    "record_from_dict",
    "record_to_dict",
    "resolve_executor",
    "resolve_trial_fn",
    "run_sweep",
    "run_trial",
    "scan_records",
    "trial_ref",
    "write_sweep_result",
]
