"""Sweep-record persistence: streamed JSONL + CSV, reloadable.

Large campaigns produce more per-trial records than anyone wants to
keep in memory or recompute for every downstream question, so this
module gives :class:`~repro.runtime.aggregate.TrialRecord` a durable
form:

* ``records.jsonl`` — the record of truth: one JSON object per trial,
  in spec order, carrying the full spec (fn / coords / seed / options)
  and the trial's values or captured error.  JSON round-trips Python
  floats exactly (``repr``-based), which is what lets a reloaded sweep
  reproduce its aggregate table **byte-identically**.
* ``records.csv`` — a flat convenience view for spreadsheets/pandas:
  one column per scalar spec option and per scalar value; non-scalar
  payloads are embedded as JSON strings.  The CSV is derived data —
  reloading always reads the JSONL.
* ``manifest.json`` — schema version, sweep id, record count, and a
  ``revision`` counter bumped by every append session, so a loader can
  reject partial or foreign directories and an operator can see how
  many times a matrix has been grown.

:class:`RecordWriter` *streams*: it is handed to
:meth:`~repro.runtime.executor.Executor.run` as a ``sink`` and writes
each record as the executor yields it (spec order, even under a
process pool), so a parallel campaign never buffers its records twice.

>>> with RecordWriter(out_dir, sweep_id=sweep.sweep_id) as writer:
...     result = executor.run(sweep, sink=writer.write)
...     writer.close(wall_seconds=result.wall_seconds, jobs=result.jobs)
>>> reloaded = load_sweep_result(out_dir)   # == result, aggregate-wise

Directories can also be **grown**: :func:`scan_records` reads whatever
complete records a directory holds — manifest or not, salvaging an
interrupted write up to its last complete line — and a writer opened
with ``resume_from=scan`` appends new records after the existing ones,
leaving every prior ``records.jsonl`` byte untouched (the CSV, being
derived data, is rebuilt).  This is the storage half of campaign
``--resume``.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from ..errors import PersistenceError
from .aggregate import SweepResult, TrialRecord
from .spec import TrialSpec

#: On-disk layout of one persisted sweep directory.
RECORDS_JSONL = "records.jsonl"
RECORDS_CSV = "records.csv"
MANIFEST_JSON = "manifest.json"

#: Bump on any incompatible change to the record JSON shape.
SCHEMA_VERSION = 1

#: Default records-per-chunk for :func:`iter_records` streaming reads.
STREAM_CHUNK = 1024


def record_to_dict(record: TrialRecord) -> Dict[str, Any]:
    """The JSON-ready form of one record (spec inlined, plain data)."""
    return {
        "fn": record.spec.fn,
        "coords": list(record.spec.coords),
        "seed": record.spec.seed,
        "options": dict(record.spec.options),
        "values": record.values,
        "error": record.error,
        "wall_seconds": record.wall_seconds,
    }


def record_from_dict(data: Dict[str, Any]) -> TrialRecord:
    """Inverse of :func:`record_to_dict`.

    JSON has no tuples, so ``coords`` comes back as a list and is
    restored to the tuple the runtime promises.  Option *values* keep
    their JSON types (a tuple-valued option such as a timing descriptor
    returns as a list); aggregation keys on strings and numbers, so the
    reduced table is unaffected.
    """
    try:
        spec = TrialSpec(
            fn=data["fn"],
            coords=tuple(data["coords"]),
            seed=data["seed"],
            options=dict(data["options"]),
        )
        return TrialRecord(
            spec=spec,
            values=dict(data["values"]),
            error=data["error"],
            wall_seconds=data["wall_seconds"],
        )
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed persisted record: {exc!r}") from None


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


#: Columns the writer itself owns; option/value keys with these names
#: are prefixed rather than silently overwritten.
_RESERVED_COLUMNS = ("seed", "wall_seconds", "error")


def flatten_record(record: TrialRecord) -> Dict[str, Any]:
    """One flat CSV row: scalar columns as-is, the rest as JSON cells.

    Option keys colliding with the writer's own columns get an
    ``option_`` prefix; value keys colliding with anything placed
    before them get a ``value_`` prefix — the JSONL keeps the
    originals either way.
    """
    flat: Dict[str, Any] = {"seed": record.spec.seed}
    taken = set(_RESERVED_COLUMNS)
    for key, value in record.spec.options.items():
        column = key if key not in taken else f"option_{key}"
        taken.add(column)
        flat[column] = value if _is_scalar(value) else json.dumps(value)
    for key, value in record.values.items():
        column = key if key not in taken else f"value_{key}"
        taken.add(column)
        flat[column] = value if _is_scalar(value) else json.dumps(value)
    flat["wall_seconds"] = record.wall_seconds
    flat["error"] = record.error or ""
    return flat


@dataclass
class ScanResult:
    """What :func:`scan_records` found in a (possibly partial) directory.

    ``records`` are every complete record in ``records.jsonl``;
    ``jsonl_bytes`` is the byte length of that valid region (an
    interrupted write's trailing fragment, if any, lies beyond it);
    ``manifest`` is the parsed manifest or ``None`` when the directory
    has none — the partial-directory case ``load_sweep_result``
    refuses but ``--resume`` repairs.
    """

    records: List[TrialRecord] = field(default_factory=list)
    manifest: Optional[Dict[str, Any]] = None
    jsonl_bytes: int = 0

    @property
    def sweep_id(self) -> str:
        return (self.manifest or {}).get("sweep_id", "sweep")

    @property
    def complete(self) -> bool:
        """True when a manifest vouches for exactly these records."""
        return (
            self.manifest is not None
            and self.manifest.get("records") == len(self.records)
        )


def scan_records(in_dir: Union[str, Path]) -> ScanResult:
    """Read a persisted directory's records, tolerating a partial tail.

    Unlike :func:`load_sweep_result`, this accepts directories without
    a manifest (aborted ``--out`` runs) and directories whose final
    JSONL line is an interrupted fragment — the fragment is excluded
    and ``jsonl_bytes`` marks where the valid region ends, so an
    appending writer can truncate to it and continue.  A malformed
    line *before* the last one is real corruption and raises
    :class:`PersistenceError`.  A missing directory or missing
    ``records.jsonl`` scans as empty.
    """
    in_dir = Path(in_dir)
    manifest: Optional[Dict[str, Any]] = None
    manifest_path = in_dir / MANIFEST_JSON
    if manifest_path.is_file():
        try:
            with manifest_path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, OSError):
            manifest = None
    records: List[TrialRecord] = []
    valid_bytes = 0
    records_path = in_dir / RECORDS_JSONL
    if not records_path.is_file():
        return ScanResult(records=[], manifest=manifest, jsonl_bytes=0)
    with records_path.open("rb") as handle:
        raw_lines = handle.readlines()
    for line_no, raw in enumerate(raw_lines, start=1):
        last = line_no == len(raw_lines)
        try:
            if not raw.endswith(b"\n"):
                raise ValueError("no trailing newline")
            record = record_from_dict(json.loads(raw.decode("utf-8")))
        except (ValueError, PersistenceError, UnicodeDecodeError) as exc:
            if last:
                break  # interrupted tail: salvage everything before it
            raise PersistenceError(
                f"{records_path}:{line_no}: corrupt record ({exc})"
            ) from None
        records.append(record)
        valid_bytes += len(raw)
    return ScanResult(
        records=records, manifest=manifest, jsonl_bytes=valid_bytes
    )


class RecordWriter:
    """Stream trial records into a persisted sweep directory.

    Opens ``records.jsonl`` and ``records.csv`` immediately.  The CSV
    header is fixed by the first *successful* record (rows before it
    are buffered, rows after it may omit columns — blank cells — but
    never add them), so a campaign whose leading trials errored still
    yields a CSV with the value columns.  The JSONL always streams;
    the CSV buffer holds only the flat rows of leading *error*
    records, so its size is bounded by the number of failures before
    the first success.

    :meth:`close` writes the manifest; it runs at most once.  The
    manifest is the loader's completeness receipt, so it is written
    only on an orderly close: when the ``with`` block exits on an
    exception (Ctrl-C mid-campaign, a dying worker pool), the context
    manager closes the file handles but *withholds* the manifest,
    leaving a directory that :func:`load_sweep_result` rejects instead
    of silently passing off a partial matrix as a complete one.

    ``resume_from`` (a :func:`scan_records` result for the same
    directory) switches the writer to **append** mode: the JSONL is
    truncated to the scan's valid region — existing complete records
    stay byte-identical — and new records append after them; the CSV,
    derived data with a fixed header, is rebuilt from the prior
    records before streaming resumes; ``count`` starts at the prior
    record count and the manifest's ``revision`` and ``wall_seconds``
    accumulate across sessions.  An aborted *resumed* write withholds
    the manifest exactly like a fresh one — the directory drops back
    to partial, and the next resume salvages both generations.
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        sweep_id: str = "sweep",
        resume_from: Optional[ScanResult] = None,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        prior_manifest = resume_from.manifest if resume_from else None
        if prior_manifest is not None:
            prior_id = prior_manifest.get("sweep_id")
            if prior_id != sweep_id:
                raise PersistenceError(
                    f"{self.out_dir} holds sweep {prior_id!r}; refusing to "
                    f"append {sweep_id!r} records to it"
                )
        # A manifest left by a previous run into this directory would
        # vouch for *this* run's records if we abort — drop it first
        # so "manifest present" always means "this write completed".
        (self.out_dir / MANIFEST_JSON).unlink(missing_ok=True)
        self.sweep_id = sweep_id
        self.count = len(resume_from.records) if resume_from else 0
        self._base_wall_seconds = (
            float(prior_manifest.get("wall_seconds", 0.0))
            if prior_manifest
            else 0.0
        )
        self.revision = (
            int((prior_manifest or {}).get("revision", 0)) + 1
            if resume_from is not None
            else 0
        )
        jsonl_path = self.out_dir / RECORDS_JSONL
        if resume_from is not None and jsonl_path.exists():
            # Drop any interrupted trailing fragment so the append
            # starts on a clean line boundary; bytes before the scan's
            # valid region are never touched.
            with jsonl_path.open("r+b") as handle:
                handle.truncate(resume_from.jsonl_bytes)
        self._jsonl: Optional[IO[str]] = jsonl_path.open(
            "a" if resume_from is not None else "w", encoding="utf-8"
        )
        try:
            self._csv_file: Optional[IO[str]] = (
                self.out_dir / RECORDS_CSV
            ).open("w", encoding="utf-8", newline="")
        except OSError:
            self._jsonl.close()
            raise
        self._csv: Optional[csv.DictWriter] = None
        self._csv_pending: List[Dict[str, Any]] = []
        self._closed = False
        if resume_from is not None:
            for prior in resume_from.records:
                self._write_csv(flatten_record(prior), prior.ok)

    def write(self, record: TrialRecord) -> None:
        """Append one record to both files (call in spec order)."""
        if self._closed:
            raise PersistenceError(f"RecordWriter({self.out_dir}) is closed")
        assert self._jsonl is not None
        json.dump(record_to_dict(record), self._jsonl, separators=(",", ":"))
        self._jsonl.write("\n")
        self._write_csv(flatten_record(record), record.ok)
        self.count += 1

    def _write_csv(self, flat: Dict[str, Any], ok: bool) -> None:
        if self._csv is not None:
            self._csv.writerow(flat)
        elif ok:
            # First successful record: its columns become the header;
            # flush anything buffered before it, then the record.
            self._start_csv(flat)
            self._csv.writerow(flat)
        else:
            # Error records carry no value columns — hold them back so
            # they cannot truncate the header and silently drop every
            # later record's result columns.  The buffer holds flat
            # error rows only (successes always stream), a deliberate
            # memory cost paid only by runs that fail from the start.
            self._csv_pending.append(flat)

    def _start_csv(self, header_row: Dict[str, Any]) -> None:
        assert self._csv_file is not None
        fieldnames = list(header_row)
        for pending in self._csv_pending:
            fieldnames.extend(k for k in pending if k not in fieldnames)
        self._csv = csv.DictWriter(
            self._csv_file,
            fieldnames=fieldnames,
            restval="",
            extrasaction="ignore",
        )
        self._csv.writeheader()
        for pending in self._csv_pending:
            self._csv.writerow(pending)
        self._csv_pending = []

    def _release_files(self) -> None:
        if self._csv is None and self._csv_pending:
            # Every record errored; emit the CSV from what there is.
            self._start_csv(self._csv_pending[0])
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None
        if self._csv_file is not None:
            self._csv_file.close()
            self._csv_file = None

    def close(
        self,
        wall_seconds: float = 0.0,
        jobs: int = 1,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Flush both files and write the manifest (idempotent).

        Only this method produces ``manifest.json`` — a directory
        without one is, by construction, an aborted write.  ``extra``
        adds caller metadata (e.g. the campaign CLI's per-cell option
        overrides) without touching the writer's own keys.
        """
        if self._closed:
            return
        self._closed = True
        self._release_files()
        manifest = {
            "schema": SCHEMA_VERSION,
            "sweep_id": self.sweep_id,
            "records": self.count,
            "wall_seconds": self._base_wall_seconds + wall_seconds,
            "jobs": jobs,
            "revision": self.revision,
        }
        for key, value in (extra or {}).items():
            manifest.setdefault(key, value)
        with (self.out_dir / MANIFEST_JSON).open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")

    def abort(self) -> None:
        """Close the file handles without writing a manifest."""
        if self._closed:
            return
        self._closed = True
        self._release_files()

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def write_sweep_result(result: SweepResult, out_dir: Union[str, Path]) -> Path:
    """Persist an already-materialised sweep result in one call."""
    with RecordWriter(out_dir, sweep_id=result.sweep_id) as writer:
        for record in result:
            writer.write(record)
        writer.close(wall_seconds=result.wall_seconds, jobs=result.jobs)
    return Path(out_dir)


def read_manifest(in_dir: Union[str, Path]) -> Dict[str, Any]:
    """Load and schema-check a complete directory's ``manifest.json``.

    The validation half that :func:`load_sweep_result` and
    :func:`iter_records` share: both files must exist and the manifest
    must carry the schema version this build reads.
    """
    in_dir = Path(in_dir)
    manifest_path = in_dir / MANIFEST_JSON
    records_path = in_dir / RECORDS_JSONL
    if not manifest_path.is_file() or not records_path.is_file():
        raise PersistenceError(
            f"{in_dir} is not a persisted sweep directory "
            f"(need {MANIFEST_JSON} and {RECORDS_JSONL})"
        )
    with manifest_path.open("r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    schema = manifest.get("schema")
    if schema != SCHEMA_VERSION:
        raise PersistenceError(
            f"unsupported schema version {schema!r} in {manifest_path} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return manifest


def iter_records(
    in_dir: Union[str, Path], chunk_size: int = STREAM_CHUNK
) -> Iterator[List[TrialRecord]]:
    """Stream a complete directory's records as bounded chunks.

    Yields lists of at most ``chunk_size`` records in persisted (=
    spec) order, holding only one chunk's row objects at a time — the
    memory-bounded counterpart of :func:`load_sweep_result` for
    consumers that reduce records as they go (columnar ingestion, the
    analyze CLI over million-row directories).  The manifest is
    validated up front and its record count checked after the final
    line, so a truncated ``records.jsonl`` still raises — just after
    the valid prefix was consumed.  As a generator, errors surface at
    iteration time, not call time.
    """
    in_dir = Path(in_dir)
    if chunk_size < 1:
        raise PersistenceError(f"chunk_size must be >= 1, got {chunk_size}")
    manifest = read_manifest(in_dir)
    records_path = in_dir / RECORDS_JSONL
    count = 0
    chunk: List[TrialRecord] = []
    with records_path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                chunk.append(record_from_dict(json.loads(line)))
            except json.JSONDecodeError as exc:
                raise PersistenceError(
                    f"{records_path}:{line_no}: invalid JSON ({exc})"
                ) from None
            count += 1
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
    if chunk:
        yield chunk
    expected = manifest.get("records")
    if expected != count:
        raise PersistenceError(
            f"{in_dir}: manifest promises {expected} records, "
            f"{RECORDS_JSONL} holds {count} (truncated write?)"
        )


def load_sweep_result(in_dir: Union[str, Path]) -> SweepResult:
    """Reload a persisted sweep directory into a :class:`SweepResult`.

    Records return in their persisted (= spec) order, so re-running an
    aggregation over the reloaded result renders the same table, byte
    for byte, as the original run.  (Thin materialising wrapper over
    :func:`iter_records`; use that directly to keep memory bounded.)
    """
    in_dir = Path(in_dir)
    manifest = read_manifest(in_dir)
    records: List[TrialRecord] = []
    for chunk in iter_records(in_dir):
        records.extend(chunk)
    return SweepResult(
        sweep_id=manifest.get("sweep_id", "sweep"),
        records=records,
        wall_seconds=manifest.get("wall_seconds", 0.0),
        jobs=manifest.get("jobs", 1),
    )


__all__ = [
    "MANIFEST_JSON",
    "RECORDS_CSV",
    "RECORDS_JSONL",
    "RecordWriter",
    "SCHEMA_VERSION",
    "STREAM_CHUNK",
    "ScanResult",
    "flatten_record",
    "iter_records",
    "load_sweep_result",
    "read_manifest",
    "record_from_dict",
    "record_to_dict",
    "scan_records",
    "write_sweep_result",
]
