"""Pluggable sweep executors: serial and process-parallel.

Trials are pure functions of their :class:`~repro.runtime.spec.TrialSpec`
(the per-trial seed fully determines the simulation), so fanning them
out to worker processes is safe.  Both executors return records in
**spec order**, which keeps a parallel sweep byte-identical to the
serial one regardless of worker count — the runtime-level analogue of
the simulation kernel's determinism contract.

The worker entry point :func:`run_trial` resolves the trial function by
its import reference, so it works under any multiprocessing start
method.  A trial that raises is *captured* into its record (with the
formatted traceback) rather than poisoning the pool; callers decide via
:meth:`SweepResult.raise_any` whether that is fatal.

Workers are long-lived on purpose: the pool is reused across sweeps,
so each worker process accumulates the trial module's per-worker state
— topology/timing/adversary template caches and the mutable
per-(protocol, topology) :class:`~repro.core.session.SessionArena`s
(see :mod:`repro.scenarios.trial`) — and amortises world construction
across every trial it executes, not just within one sweep.

Worker count resolution, in precedence order: explicit argument, the
``REPRO_JOBS`` environment variable, serial.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor as _Pool
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from ..errors import ExperimentError
from .aggregate import SweepResult, TrialRecord
from .spec import SweepSpec, TrialSpec

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Environment variable consulted when no explicit chunksize is given.
CHUNKSIZE_ENV_VAR = "REPRO_CHUNKSIZE"


def default_chunksize() -> Optional[int]:
    """Chunksize from ``REPRO_CHUNKSIZE`` (invalid/missing mean ``None``).

    ``None`` defers to the per-sweep heuristic — see
    :meth:`ParallelExecutor.pick_chunksize`.
    """
    raw = os.environ.get(CHUNKSIZE_ENV_VAR, "").strip()
    try:
        return max(1, int(raw)) if raw else None
    except ValueError:
        return None


def run_trial(spec: TrialSpec) -> TrialRecord:
    """Execute one trial spec; never raises (errors are captured)."""
    t0 = time.perf_counter()
    try:
        values = spec.resolve()(spec)
        if not isinstance(values, dict):
            raise ExperimentError(
                f"trial {spec.fn!r} returned {type(values).__name__}, "
                "expected a dict of plain values"
            )
        return TrialRecord(
            spec=spec, values=values, wall_seconds=time.perf_counter() - t0
        )
    except Exception:
        return TrialRecord(
            spec=spec,
            error=traceback.format_exc(),
            wall_seconds=time.perf_counter() - t0,
        )


def default_jobs() -> int:
    """Job count from ``REPRO_JOBS`` (invalid/missing values mean 1)."""
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


class Executor:
    """Runs a :class:`SweepSpec`, returning records in spec order."""

    jobs: int = 1

    def run(
        self,
        sweep: SweepSpec,
        sink: Optional[Callable[[TrialRecord], None]] = None,
    ) -> SweepResult:
        """Execute the sweep; optionally stream records to ``sink``.

        ``sink`` is called once per record, **in spec order, as the
        record becomes available** — a parallel run streams results out
        while later trials are still executing, which is what lets a
        persistence writer follow a large campaign without buffering it
        twice.
        """
        t0 = time.perf_counter()
        records = []
        for record in self.imap(sweep.trials):
            records.append(record)
            if sink is not None:
                sink(record)
        return SweepResult(
            sweep_id=sweep.sweep_id,
            records=records,
            wall_seconds=time.perf_counter() - t0,
            jobs=self.jobs,
        )

    def imap(self, specs: Sequence[TrialSpec]) -> Iterator[TrialRecord]:
        """Yield one record per spec, in spec order, as they complete."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any held resources (no-op for inline executors)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Run every trial in the current process, one after the other."""

    def imap(self, specs: Sequence[TrialSpec]) -> Iterator[TrialRecord]:
        for spec in specs:
            yield run_trial(spec)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fan trials out over a :class:`ProcessPoolExecutor`.

    ``pool.map`` preserves input order, so the returned records are
    positionally identical to a serial run.  The worker pool is
    created lazily on the first multi-trial sweep and reused across
    sweeps (one `python -m repro --jobs 4` pays start-up once, not
    once per experiment); single-trial sweeps (or ``jobs=1``) run
    inline.  Call :meth:`shutdown` — or use the executor as a context
    manager — to release the workers early; otherwise they are
    reclaimed on garbage collection / interpreter exit.
    """

    def __init__(self, jobs: Optional[int] = None, chunksize: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize if chunksize is not None else default_chunksize()
        #: Chunksize actually used by the most recent parallel sweep
        #: (``None`` until one ran); campaign manifests record it.
        self.last_chunksize: Optional[int] = None
        self._pool: Optional[_Pool] = None

    def pick_chunksize(self, n_specs: int) -> int:
        """The chunksize for a sweep of ``n_specs`` trials.

        An explicit chunksize (constructor argument, else the
        ``REPRO_CHUNKSIZE`` environment variable) wins.  Otherwise the
        heuristic targets **four chunks per worker**:
        ``max(1, n // (min(jobs, n) * 4))``.  One chunk per worker
        would minimise pickling overhead but lets a single slow chunk
        (trials are far from uniform — an async delayer cell runs
        orders of magnitude longer than a sync honest one) leave the
        rest of the pool idle at the tail; per-trial chunks pay
        round-trip pickling on every record.  Four per worker keeps
        the tail short while amortising the IPC.
        """
        if self.chunksize:
            return self.chunksize
        return max(1, n_specs // (min(self.jobs, n_specs) * 4))

    def imap(self, specs: Sequence[TrialSpec]) -> Iterator[TrialRecord]:
        if self.jobs <= 1 or len(specs) <= 1:
            for spec in specs:
                yield run_trial(spec)
            return
        if self._pool is None:
            self._pool = _Pool(max_workers=self.jobs)
        chunksize = self.pick_chunksize(len(specs))
        self.last_chunksize = chunksize
        # pool.map yields lazily in input order, so a streaming sink
        # sees records as chunks complete, not after the whole sweep.
        yield from self._pool.map(run_trial, specs, chunksize=chunksize)

    def shutdown(self) -> None:
        """Release the worker pool (idempotent; executor stays usable)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


def resolve_executor(
    executor: Union[Executor, int, None] = None,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> Executor:
    """Normalise the common ``executor=`` argument of experiment APIs.

    Accepts an :class:`Executor` (returned as-is), an integer job
    count, or ``None`` — in which case ``jobs`` and then the
    ``REPRO_JOBS`` environment variable decide.  ``chunksize`` tunes a
    :class:`ParallelExecutor` it builds (``None`` = the
    ``REPRO_CHUNKSIZE`` variable, else the four-chunks-per-worker
    heuristic); it is ignored for serial runs and pre-built executors.
    """
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, int):
        jobs = executor
    elif executor is not None:
        raise ExperimentError(
            f"executor must be an Executor, an int, or None, got {executor!r}"
        )
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs, chunksize=chunksize)


def run_sweep(
    sweep: SweepSpec,
    executor: Union[Executor, int, None] = None,
) -> SweepResult:
    """Convenience wrapper: resolve an executor and run the sweep."""
    return resolve_executor(executor).run(sweep)


__all__ = [
    "CHUNKSIZE_ENV_VAR",
    "Executor",
    "JOBS_ENV_VAR",
    "ParallelExecutor",
    "SerialExecutor",
    "default_chunksize",
    "default_jobs",
    "resolve_executor",
    "run_sweep",
    "run_trial",
]
