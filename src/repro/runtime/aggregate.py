"""Aggregation: trial records and sweep results.

Executors return a :class:`SweepResult` — one :class:`TrialRecord` per
trial spec, **in spec order**, whatever the worker count or scheduling.
Experiments then reduce records into their
:class:`~repro.experiments.harness.ExperimentResult` tables; because
the records (not the reductions) cross process boundaries, trial
functions return plain value dicts and every aggregation runs in the
parent process, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from ..errors import ExperimentError


class TrialError(ExperimentError):
    """A trial raised inside an executor (re-raised at aggregation)."""


@dataclass
class TrialRecord:
    """The outcome of one trial: plain values or a captured error."""

    spec: Any  # TrialSpec; typed loosely to keep pickling cheap
    values: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, key: str) -> Any:
        if self.error is not None:
            raise TrialError(
                f"trial {self.spec.coords!r} failed:\n{self.error}"
            )
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)


@dataclass
class SweepResult:
    """All records of one sweep, in the sweep spec's trial order."""

    sweep_id: str
    records: List[TrialRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TrialRecord]:
        return iter(self.records)

    @property
    def ok(self) -> bool:
        return not self.errors()

    def errors(self) -> List[TrialRecord]:
        return [r for r in self.records if not r.ok]

    def raise_any(self) -> "SweepResult":
        """Raise :class:`TrialError` if any trial failed; else self."""
        bad = self.errors()
        if bad:
            first = bad[0]
            raise TrialError(
                f"{len(bad)}/{len(self.records)} trials of sweep "
                f"{self.sweep_id!r} failed; first: trial "
                f"{first.spec.coords!r}\n{first.error}"
            )
        return self

    def select(self, **match: Any) -> List[TrialRecord]:
        """Records whose spec options match all given key/values."""
        return [
            r
            for r in self.records
            if all(r.spec.options.get(k) == v for k, v in match.items())
        ]

    def distinct(self, option: str) -> List[Any]:
        """Ordered distinct values of a spec option across records."""
        seen: List[Any] = []
        for record in self.records:
            value = record.spec.options.get(option)
            if value not in seen:
                seen.append(value)
        return seen

    def column(self, key: str) -> List[Any]:
        """One value per record (raises TrialError on failed trials)."""
        return [r[key] for r in self.records]

    def trial_wall_seconds(self) -> float:
        """Sum of per-trial wall clocks (serial-equivalent work)."""
        return sum(r.wall_seconds for r in self.records)


__all__ = ["SweepResult", "TrialError", "TrialRecord"]
