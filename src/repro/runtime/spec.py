"""Declarative trial and sweep specifications.

A :class:`TrialSpec` describes one Monte-Carlo trial as plain data: a
reference to a pure *trial function*, the grid coordinates that
identify the trial, a derived seed, and a mapping of primitive options
(topology size, protocol name, timing parameters, ...).  Because specs
carry no live objects they pickle cheaply, which is what lets the
:mod:`repro.runtime.executor` layer fan trials out to worker processes
while preserving the kernel's determinism contract.

A :class:`SweepSpec` is an ordered list of trial specs, usually built
with :meth:`SweepSpec.grid` (cartesian product over named axes).

Seeds are derived with :func:`derive_seed`, which hashes the master
seed together with the sweep id and the trial's coordinates.  Unlike
the ad-hoc ``seed * 1000 + s`` mixing the experiments used to do, the
hash cannot collide between neighbouring sweep coordinates or master
seeds (it would take a 64-bit birthday collision).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from importlib import import_module
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from ..errors import ExperimentError

#: A trial function is referenced as "package.module:qualname" so that
#: worker processes can resolve it by import, whatever the start method.
TrialFn = Callable[["TrialSpec"], Dict[str, Any]]


def derive_seed(master: int, *coords: Any) -> int:
    """Derive a collision-free 63-bit trial seed from coordinates.

    The master seed and every coordinate (ints, floats, strings, bools,
    tuples thereof) are folded through BLAKE2b, so distinct coordinate
    tuples map to distinct seeds and sweeps under different master
    seeds draw from disjoint seed families.  The derivation depends
    only on values, never on interpreter state, so it is stable across
    processes and Python invocations.
    """
    payload = repr((int(master),) + coords).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1  # keep it positive


def trial_ref(fn: Union[str, TrialFn]) -> str:
    """Return the ``"module:qualname"`` reference for a trial function."""
    if isinstance(fn, str):
        return fn
    if "<locals>" in fn.__qualname__:
        raise ExperimentError(
            f"trial function {fn.__qualname__!r} must be module-level "
            "so worker processes can import it"
        )
    return f"{fn.__module__}:{fn.__qualname__}"


@lru_cache(maxsize=64)
def resolve_trial_fn(ref: str) -> TrialFn:
    """Resolve a ``"module:qualname"`` reference back to the callable.

    Memoized per process: a campaign resolves the same reference once
    per *trial* otherwise, and while ``import_module`` hits the import
    cache, the attribute walk and validation are pure overhead on the
    hot path.  References are module-level names, so the resolution is
    stable for the life of the process.
    """
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ExperimentError(f"malformed trial reference: {ref!r}")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ExperimentError(f"trial reference {ref!r} is not callable")
    return obj


@dataclass(frozen=True)
class TrialSpec:
    """One trial, described declaratively.

    Attributes
    ----------
    fn:
        ``"module:qualname"`` reference to the trial function.
    coords:
        The grid coordinates identifying this trial inside its sweep
        (axis values in axis order).  Purely informational once the
        seed is derived, but kept for grouping and debugging.
    seed:
        The derived per-trial seed (see :func:`derive_seed`).
    options:
        Primitive keyword payload for the trial function: topology
        size, protocol name, timing parameters, scenario labels...
        Values must be picklable plain data.
    """

    fn: str
    coords: Tuple[Any, ...] = ()
    seed: int = 0
    options: Mapping[str, Any] = field(default_factory=dict)

    def opt(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)

    def resolve(self) -> TrialFn:
        return resolve_trial_fn(self.fn)


@dataclass
class SweepSpec:
    """An ordered grid of trials; the unit of work an executor runs."""

    sweep_id: str
    trials: List[TrialSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self) -> Iterator[TrialSpec]:
        return iter(self.trials)

    def add(
        self,
        fn: Union[str, TrialFn],
        master_seed: int,
        coords: Sequence[Any],
        **options: Any,
    ) -> TrialSpec:
        """Append a single trial; its seed is derived from ``coords``."""
        coords = tuple(coords)
        spec = TrialSpec(
            fn=trial_ref(fn),
            coords=coords,
            seed=derive_seed(master_seed, self.sweep_id, *coords),
            options=dict(options),
        )
        self.trials.append(spec)
        return spec

    def extend(self, other: "SweepSpec") -> "SweepSpec":
        """Append all of ``other``'s trials (ids may differ)."""
        self.trials.extend(other.trials)
        return self

    @classmethod
    def grid(
        cls,
        sweep_id: str,
        fn: Union[str, TrialFn],
        master_seed: int,
        axes: Mapping[str, Sequence[Any]],
        **common: Any,
    ) -> "SweepSpec":
        """Cartesian product over named axes.

        Each trial's ``coords`` are the axis values in axis order; its
        options are ``{**common, **axis_values_by_name}``; its seed is
        ``derive_seed(master_seed, sweep_id, *coords)``.
        """
        sweep = cls(sweep_id=sweep_id)
        names = list(axes)
        for values in itertools.product(*(axes[name] for name in names)):
            sweep.add(
                fn,
                master_seed,
                values,
                **{**common, **dict(zip(names, values))},
            )
        return sweep


__all__ = [
    "SweepSpec",
    "TrialSpec",
    "derive_seed",
    "resolve_trial_fn",
    "trial_ref",
]
