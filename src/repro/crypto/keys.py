"""Identities and key material (simulated).

Real deployments use asymmetric signatures; for a deterministic,
dependency-free simulation we use HMAC with per-identity secrets held in
a :class:`KeyRing`.  The security property we need for the Byzantine
model — *a process can only produce signatures attributable to
identities whose secret it holds* — is enforced structurally: signing
requires the :class:`Identity` object (which carries the secret), and
honest infrastructure never hands one identity's object to another
participant.  Verification needs only the public registry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List

from ..errors import CryptoError


@lru_cache(maxsize=1024)
def _derive_secret(name: str, domain: str) -> bytes:
    """Deterministic per-identity secret (simulation only).

    Pure in its arguments (no seed involvement), so the derivation is
    memoized: campaigns re-create the same few identities for every
    trial.
    """
    return hashlib.blake2b(
        f"repro-keyring:{domain}:{name}".encode("utf-8"), digest_size=32
    ).digest()


@dataclass(frozen=True)
class Identity:
    """A named signer.  Possession of the object = ability to sign."""

    name: str
    secret: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CryptoError("identity name must be non-empty")
        if len(self.secret) < 16:
            raise CryptoError("identity secret too short")


class KeyRing:
    """Registry of identities for one simulated world.

    Parameters
    ----------
    domain:
        Namespace string; two key rings with different domains produce
        incompatible signatures, preventing cross-simulation replay in
        tests.
    """

    def __init__(self, domain: str = "default") -> None:
        self.domain = domain
        self._identities: Dict[str, Identity] = {}

    def create(self, name: str) -> Identity:
        """Create (or return the existing) identity for ``name``."""
        existing = self._identities.get(name)
        if existing is not None:
            return existing
        identity = Identity(name=name, secret=_derive_secret(name, self.domain))
        self._identities[name] = identity
        return identity

    def create_all(self, names: Iterable[str]) -> List[Identity]:
        """Create identities for several names."""
        return [self.create(name) for name in names]

    def secret_of(self, name: str) -> bytes:
        """Secret lookup used *only* by the verifier.

        Verification recomputes the HMAC, which in this simulation
        requires the secret.  The method is package-private by
        convention: protocol/Byzantine code receives Identity objects,
        never the ring.
        """
        identity = self._identities.get(name)
        if identity is None:
            raise CryptoError(f"unknown identity: {name!r}")
        return identity.secret

    def knows(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        return name in self._identities

    def names(self) -> List[str]:
        """Sorted registered identity names."""
        return sorted(self._identities)


__all__ = ["Identity", "KeyRing"]
