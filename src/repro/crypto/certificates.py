"""Certificates: χ, commit/abort decisions, and quorum certificates.

The paper's protocols revolve around three certificate families:

* :class:`PaymentCertificate` — χ, signed by Bob, stating that Alice's
  obligation to pay him has been met (Definition 1).
* :class:`DecisionCertificate` — χc (commit) or χa (abort), issued by a
  transaction manager in the weak-liveness protocol (Definition 2).
  Property CC demands that χc and χa are never both issued.
* :class:`QuorumCertificate` — a decision backed by ≥ ``threshold``
  distinct valid notary signatures, the committee realisation of the
  transaction manager.

All certificates are signed over canonical encodings; holders can be
handed around freely and verified by anyone with the key ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from ..errors import CryptoError
from .keys import Identity, KeyRing
from .signatures import Signature, sign, verify


class Decision(str, Enum):
    """Transaction-manager decision values."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class PaymentCertificate:
    """χ — Bob's signed statement that his payment obligation is met.

    Attributes
    ----------
    payment_id:
        Identifier of the payment session this certificate belongs to.
    issuer:
        Name of the signer (Bob in honest runs).
    signature:
        Signature over ``(payment_id, issuer)``.
    """

    payment_id: str
    issuer: str
    signature: Signature

    def signing_fields(self) -> Dict[str, Any]:
        return {"type": "chi", "payment_id": self.payment_id, "issuer": self.issuer}

    @classmethod
    def issue(cls, identity: Identity, payment_id: str) -> "PaymentCertificate":
        """Create χ signed by ``identity``."""
        body = {"type": "chi", "payment_id": payment_id, "issuer": identity.name}
        return cls(
            payment_id=payment_id,
            issuer=identity.name,
            signature=sign(identity, body),
        )

    def valid(self, keyring: KeyRing, expected_issuer: Optional[str] = None) -> bool:
        """Verify the signature (and, optionally, the issuer's name).

        The signature's signer must equal the claimed issuer — without
        this check a Byzantine party could sign, with *her own* key, a
        body claiming Bob issued it, and the tag would still verify.
        """
        if expected_issuer is not None and self.issuer != expected_issuer:
            return False
        if self.signature.signer != self.issuer:
            return False
        return verify(keyring, self.signature, self.signing_fields())


@dataclass(frozen=True)
class DecisionCertificate:
    """χc / χa — a single-signer transaction-manager decision."""

    payment_id: str
    decision: Decision
    issuer: str
    signature: Signature

    def signing_fields(self) -> Dict[str, Any]:
        return {
            "type": "decision",
            "payment_id": self.payment_id,
            "decision": self.decision.value,
            "issuer": self.issuer,
        }

    @classmethod
    def issue(
        cls, identity: Identity, payment_id: str, decision: Decision
    ) -> "DecisionCertificate":
        """Create a decision certificate signed by ``identity``."""
        body = {
            "type": "decision",
            "payment_id": payment_id,
            "decision": decision.value,
            "issuer": identity.name,
        }
        return cls(
            payment_id=payment_id,
            decision=decision,
            issuer=identity.name,
            signature=sign(identity, body),
        )

    def valid(self, keyring: KeyRing, expected_issuer: Optional[str] = None) -> bool:
        """Verify the signature (and, optionally, the issuer's name)."""
        if expected_issuer is not None and self.issuer != expected_issuer:
            return False
        if self.signature.signer != self.issuer:
            return False
        return verify(keyring, self.signature, self.signing_fields())

    @property
    def is_commit(self) -> bool:
        return self.decision is Decision.COMMIT


@dataclass(frozen=True)
class Vote:
    """One notary's signed vote for a decision."""

    payment_id: str
    decision: Decision
    notary: str
    signature: Signature

    def signing_fields(self) -> Dict[str, Any]:
        return {
            "type": "vote",
            "payment_id": self.payment_id,
            "decision": self.decision.value,
            "notary": self.notary,
        }

    @classmethod
    def cast(cls, identity: Identity, payment_id: str, decision: Decision) -> "Vote":
        """Create a vote signed by the notary ``identity``."""
        body = {
            "type": "vote",
            "payment_id": payment_id,
            "decision": decision.value,
            "notary": identity.name,
        }
        return cls(
            payment_id=payment_id,
            decision=decision,
            notary=identity.name,
            signature=sign(identity, body),
        )

    def valid(self, keyring: KeyRing) -> bool:
        if self.signature.signer != self.notary:
            return False
        return verify(keyring, self.signature, self.signing_fields())


@dataclass(frozen=True)
class QuorumCertificate:
    """A decision backed by a quorum of notary votes.

    Validity requires ≥ ``threshold`` votes that (a) verify, (b) are by
    *distinct* notaries drawn from the known committee, and (c) agree
    with the certificate's payment id and decision.
    """

    payment_id: str
    decision: Decision
    votes: Sequence[Vote] = field(default_factory=tuple)

    def signing_fields(self) -> Dict[str, Any]:
        return {
            "type": "quorum",
            "payment_id": self.payment_id,
            "decision": self.decision.value,
            "voters": sorted(v.notary for v in self.votes),
        }

    def supporting_notaries(self, keyring: KeyRing, committee: Sequence[str]) -> List[str]:
        """Distinct committee members with valid, matching votes."""
        members = set(committee)
        seen: List[str] = []
        for vote in self.votes:
            if vote.notary in seen or vote.notary not in members:
                continue
            if vote.payment_id != self.payment_id or vote.decision != self.decision:
                continue
            if vote.valid(keyring):
                seen.append(vote.notary)
        return seen

    def valid(
        self, keyring: KeyRing, committee: Sequence[str], threshold: int
    ) -> bool:
        """Whether the certificate carries a valid quorum."""
        if threshold <= 0:
            raise CryptoError("quorum threshold must be positive")
        return len(self.supporting_notaries(keyring, committee)) >= threshold

    @property
    def is_commit(self) -> bool:
        return self.decision is Decision.COMMIT


#: Union type used in payloads: either a single-signer or quorum decision.
AnyDecisionCertificate = (DecisionCertificate, QuorumCertificate)


__all__ = [
    "AnyDecisionCertificate",
    "Decision",
    "DecisionCertificate",
    "PaymentCertificate",
    "QuorumCertificate",
    "Vote",
]
