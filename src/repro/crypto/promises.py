"""Escrow promises G(d) and P(a) — the paper's two contract messages.

From Section 4 of the paper:

* ``G(d)``: *"I guarantee that if I receive $ from you at my local time
  w, then I will send you either $ or χ by my local time w + d."*
  Sent by escrow ``e_i`` to its upstream customer ``c_i``.

* ``P(a)``: *"I promise that if I receive χ from you at my time v, with
  v < now + a, then I will send you $ by my local time v + ε."*
  Sent by escrow ``e_i`` to its downstream customer ``c_{i+1}``; ``now``
  is the escrow-local issuance time.

Promises are signed by the issuing escrow so customers can later prove
misbehaviour (not exercised by the protocols here, but it makes the
objects self-contained evidence, as in the paper's model where escrow
conduct is auditable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import CryptoError
from .keys import Identity, KeyRing
from .signatures import Signature, sign, verify


@dataclass(frozen=True)
class Guarantee:
    """G(d): refund-or-certificate guarantee to the upstream customer."""

    payment_id: str
    escrow: str
    customer: str
    d: float
    signature: Signature

    def signing_fields(self) -> Dict[str, Any]:
        return {
            "type": "guarantee",
            "payment_id": self.payment_id,
            "escrow": self.escrow,
            "customer": self.customer,
            "d": self.d,
        }

    @classmethod
    def issue(
        cls, identity: Identity, payment_id: str, customer: str, d: float
    ) -> "Guarantee":
        """Create G(d) signed by the escrow ``identity``."""
        if d <= 0:
            raise CryptoError(f"guarantee window d must be > 0, got {d!r}")
        body = {
            "type": "guarantee",
            "payment_id": payment_id,
            "escrow": identity.name,
            "customer": customer,
            "d": d,
        }
        return cls(
            payment_id=payment_id,
            escrow=identity.name,
            customer=customer,
            d=d,
            signature=sign(identity, body),
        )

    def valid(self, keyring: KeyRing) -> bool:
        return (
            self.signature.signer == self.escrow
            and verify(keyring, self.signature, self.signing_fields())
        )


@dataclass(frozen=True)
class PaymentPromise:
    """P(a): pay-on-certificate promise to the downstream customer.

    ``issued_at_local`` is the escrow-local time ``now`` at issuance —
    the base of the acceptance window ``[now, now + a)``.  It is part of
    the signed body, making the window auditable.
    """

    payment_id: str
    escrow: str
    customer: str
    a: float
    issued_at_local: float
    signature: Signature

    def signing_fields(self) -> Dict[str, Any]:
        return {
            "type": "promise",
            "payment_id": self.payment_id,
            "escrow": self.escrow,
            "customer": self.customer,
            "a": self.a,
            "issued_at_local": self.issued_at_local,
        }

    @classmethod
    def issue(
        cls,
        identity: Identity,
        payment_id: str,
        customer: str,
        a: float,
        issued_at_local: float,
    ) -> "PaymentPromise":
        """Create P(a) signed by the escrow ``identity``."""
        if a <= 0:
            raise CryptoError(f"promise window a must be > 0, got {a!r}")
        body = {
            "type": "promise",
            "payment_id": payment_id,
            "escrow": identity.name,
            "customer": customer,
            "a": a,
            "issued_at_local": issued_at_local,
        }
        return cls(
            payment_id=payment_id,
            escrow=identity.name,
            customer=customer,
            a=a,
            issued_at_local=issued_at_local,
            signature=sign(identity, body),
        )

    def deadline_local(self) -> float:
        """Escrow-local instant at which the acceptance window closes."""
        return self.issued_at_local + self.a

    def valid(self, keyring: KeyRing) -> bool:
        return (
            self.signature.signer == self.escrow
            and verify(keyring, self.signature, self.signing_fields())
        )


__all__ = ["Guarantee", "PaymentPromise"]
