"""Signing and verification over canonical payload encodings.

A :class:`Signature` binds an identity name to a *canonical encoding* of
a payload.  Canonicalisation walks plain Python structures (dict, list,
tuple, str, int, float, bool, None, bytes) and any object exposing
``signing_fields() -> dict``; the encoding is stable across runs and
platforms so signatures are reproducible.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import CryptoError, SignatureError
from .keys import Identity, KeyRing


def canonical_encode(payload: Any) -> bytes:
    """Deterministically encode ``payload`` for signing.

    Raises
    ------
    CryptoError
        If the payload contains an unsupported type.
    """
    out = bytearray()
    _encode_into(payload, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    # Exact-class dispatch first (ordered by observed frequency in
    # protocol payloads); subclasses — IntEnum values, str subclasses,
    # ``signing_fields`` objects — fall through to the isinstance chain
    # in :func:`_encode_other`, which preserves the original dispatch
    # order and therefore the canonical byte encoding.
    cls = value.__class__
    if cls is str:
        raw = value.encode("utf-8")
        out += b"S%d:" % len(raw)
        out += raw
        out += b";"
    elif cls is int:
        out += b"I%d;" % value
    elif cls is dict:
        keys = sorted(value, key=str)
        out += b"D%d:" % len(keys)
        for key in keys:
            _encode_into(str(key), out)
            _encode_into(value[key], out)
        out += b";"
    elif cls is list or cls is tuple:
        out += b"L%d:" % len(value)
        for item in value:
            _encode_into(item, out)
        out += b";"
    elif cls is float:
        out += b"F" + value.hex().encode() + b";"
    elif cls is bool:
        out += b"B1;" if value else b"B0;"
    elif value is None:
        out += b"N;"
    elif cls is bytes:
        out += b"Y%d:" % len(value)
        out += value
        out += b";"
    else:
        _encode_other(value, out)


def _encode_other(value: Any, out: bytearray) -> None:
    """Subclass / protocol fallback, in the canonical dispatch order."""
    if isinstance(value, bool):
        out += b"B1;" if value else b"B0;"
    elif isinstance(value, int):
        out += b"I%d;" % int(value)
    elif isinstance(value, float):
        out += b"F" + float(value).hex().encode() + b";"
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"S%d:" % len(raw)
        out += raw
        out += b";"
    elif isinstance(value, bytes):
        out += b"Y%d:" % len(value)
        out += value
        out += b";"
    elif isinstance(value, (list, tuple)):
        out += b"L%d:" % len(value)
        for item in value:
            _encode_into(item, out)
        out += b";"
    elif isinstance(value, dict):
        keys = sorted(value, key=str)
        out += b"D%d:" % len(keys)
        for key in keys:
            _encode_into(str(key), out)
            _encode_into(value[key], out)
        out += b";"
    elif hasattr(value, "signing_fields"):
        fields = value.signing_fields()
        out += f"O{type(value).__name__}:".encode()
        _encode_into(fields, out)
        out += b";"
    else:
        raise CryptoError(f"cannot canonically encode {type(value).__name__}")


@dataclass(frozen=True)
class Signature:
    """An HMAC tag binding ``signer`` to a payload digest."""

    signer: str
    tag: bytes

    def __post_init__(self) -> None:
        if len(self.tag) != 32:
            raise CryptoError("signature tag must be 32 bytes")


def sign(identity: Identity, payload: Any) -> Signature:
    """Sign ``payload`` as ``identity``.

    Signing requires the identity object (and thus its secret) — this is
    the structural unforgeability guarantee.
    """
    encoded = canonical_encode(payload)
    tag = hmac.new(identity.secret, encoded, hashlib.sha256).digest()
    return Signature(signer=identity.name, tag=tag)


def verify(keyring: KeyRing, signature: Signature, payload: Any) -> bool:
    """Check ``signature`` over ``payload`` against the registry.

    Returns ``False`` for unknown signers or non-matching tags (never
    raises for a *failed* check; raises only for malformed inputs).
    """
    if not keyring.knows(signature.signer):
        return False
    encoded = canonical_encode(payload)
    expected = hmac.new(
        keyring.secret_of(signature.signer), encoded, hashlib.sha256
    ).digest()
    return hmac.compare_digest(expected, signature.tag)


def require_valid(keyring: KeyRing, signature: Signature, payload: Any) -> None:
    """Verify or raise :class:`SignatureError`."""
    if not verify(keyring, signature, payload):
        raise SignatureError(
            f"invalid signature claimed by {signature.signer!r}"
        )


@dataclass(frozen=True)
class SignedClaim:
    """A generic signed statement (dict body + signature).

    Used for the weak-liveness protocol's control plane: escrows sign
    "escrowed" reports, Bob signs his commit request, customers sign
    abort requests — so notaries can verify the provenance of protocol
    inputs (external validity of the consensus).
    """

    body: "dict"
    signature: Signature

    @classmethod
    def make(cls, identity: Identity, **body: Any) -> "SignedClaim":
        """Sign a claim; the signer name is embedded into the body."""
        full = {**body, "signer": identity.name}
        return cls(body=full, signature=sign(identity, full))

    @property
    def signer(self) -> str:
        return str(self.body.get("signer", ""))

    def valid(self, keyring: KeyRing, expected_signer: Optional[str] = None) -> bool:
        """Verify the claim (optionally pinning the signer)."""
        if self.signature.signer != self.signer:
            return False
        if expected_signer is not None and self.signer != expected_signer:
            return False
        return verify(keyring, self.signature, self.body)

    def get(self, key: str, default: Any = None) -> Any:
        return self.body.get(key, default)


__all__ = [
    "Signature",
    "SignedClaim",
    "canonical_encode",
    "require_valid",
    "sign",
    "verify",
]
