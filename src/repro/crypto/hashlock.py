"""Hash-locks for the HTLC / timelock-commit baselines.

A hash-lock commits to a secret ``s`` by publishing ``h = SHA-256(s)``;
funds locked under ``h`` can be claimed by presenting any preimage of
``h``.  This is the mechanism behind hashed timelock contracts (HTLC,
the Interledger *atomic* mode) and the timelock commit protocol of
Herlihy–Liskov–Shrira used in the Section 5 comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import CryptoError


@dataclass(frozen=True)
class HashLock:
    """A published hash commitment."""

    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise CryptoError("hash-lock digest must be 32 bytes (SHA-256)")

    def matches(self, preimage: "Preimage") -> bool:
        """Whether ``preimage`` opens this lock."""
        return hashlib.sha256(preimage.value).digest() == self.digest

    def signing_fields(self) -> dict:
        return {"type": "hashlock", "digest": self.digest}


@dataclass(frozen=True)
class Preimage:
    """A secret that opens a :class:`HashLock`."""

    value: bytes

    def lock(self) -> HashLock:
        """The lock this preimage opens."""
        return HashLock(hashlib.sha256(self.value).digest())

    def signing_fields(self) -> dict:
        return {"type": "preimage", "value": self.value}


def new_secret(seed: str) -> Preimage:
    """Derive a deterministic secret from a seed string.

    Determinism keeps simulations reproducible; unpredictability is not
    required because the simulation's adversaries are scheduling/behaviour
    adversaries, not cryptanalytic ones.
    """
    return Preimage(hashlib.blake2b(seed.encode("utf-8"), digest_size=32).digest())


def sink_secrets(payment_id: str, sinks: Sequence[str]) -> Dict[str, Preimage]:
    """One deterministic secret per payment recipient.

    On a multi-sink payment DAG every recipient holds their *own*
    secret, so a hop commits only when every sink downstream of it has
    revealed theirs.  The single-sink case keeps the historical
    ``<payment_id>/secret`` seed so path runs stay byte-identical with
    pre-DAG builds.
    """
    if len(sinks) == 1:
        return {sinks[0]: new_secret(f"{payment_id}/secret")}
    return {sink: new_secret(f"{payment_id}/secret/{sink}") for sink in sinks}


__all__ = ["HashLock", "Preimage", "new_secret", "sink_secrets"]

