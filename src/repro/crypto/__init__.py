"""Simulated authenticated cryptography: identities, signatures,
certificates, escrow promises, and hash-locks."""

from .certificates import (
    Decision,
    DecisionCertificate,
    PaymentCertificate,
    QuorumCertificate,
    Vote,
)
from .hashlock import HashLock, Preimage, new_secret
from .keys import Identity, KeyRing
from .promises import Guarantee, PaymentPromise
from .signatures import Signature, canonical_encode, require_valid, sign, verify

__all__ = [
    "Decision",
    "DecisionCertificate",
    "Guarantee",
    "HashLock",
    "Identity",
    "KeyRing",
    "PaymentCertificate",
    "PaymentPromise",
    "Preimage",
    "QuorumCertificate",
    "Signature",
    "Vote",
    "canonical_encode",
    "new_secret",
    "require_valid",
    "sign",
    "verify",
]
